"""Internals of Algorithm 6: layer budget, remainder bound, anchoring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    binary_tree,
    caterpillar,
    random_chordal_graph,
    random_tree,
)
from repro.mis import (
    chordal_mis,
    independence_number_chordal,
    mis_peeling_parameters,
)


class TestRemainderBound:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 3_000), n=st.integers(10, 60))
    def test_lemma14_remainder_alpha(self, seed, n):
        """alpha(G_{kappa+1}) <= (eps/2) alpha(G): the abandoned remainder
        cannot hide much independent set."""
        eps = 0.45
        g = random_chordal_graph(n, seed=seed)
        result = chordal_mis(g, eps)
        remainder = result.peeling.remaining_nodes()
        if not remainder:
            return
        alpha_rest = independence_number_chordal(g.induced_subgraph(remainder))
        alpha_all = independence_number_chordal(g)
        assert alpha_rest <= eps / 2 * alpha_all + 1e-9

    def test_deep_tree_leaves_no_big_remainder(self):
        g = binary_tree(8)  # 511 nodes, log-depth peeling
        result = chordal_mis(g, 0.45)
        remainder = result.peeling.remaining_nodes()
        alpha_all = independence_number_chordal(g)
        if remainder:
            alpha_rest = independence_number_chordal(
                g.induced_subgraph(remainder)
            )
            assert alpha_rest <= 0.225 * alpha_all


class TestLayerBudget:
    @pytest.mark.parametrize("eps", [0.45, 0.2, 0.05])
    def test_kappa_grows_slowly(self, eps):
        d, kappa = mis_peeling_parameters(eps)
        assert d >= 64 / eps - 1
        # kappa = O(log(1/eps)): generous numeric check
        import math

        assert kappa <= math.log2(1 / eps) * 3 + 18

    def test_layers_capped_by_kappa_on_deep_instances(self):
        g = binary_tree(9)
        result = chordal_mis(g, 0.49)
        assert result.peeling.num_layers() <= result.kappa


class TestIndependenceAcrossLayers:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 3_000), n=st.integers(10, 50))
    def test_no_cross_layer_adjacency_in_output(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        result = chordal_mis(g, 0.4)
        members = sorted(result.independent_set)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                assert not g.has_edge(u, v)

    def test_caterpillar_optimal(self):
        g = caterpillar(spine=40, legs_per_vertex=3)
        result = chordal_mis(g, 0.45)
        # legs dominate: the optimum takes all 120 legs
        assert result.size() == independence_number_chordal(g)
