"""Algorithm 6: (1 + eps)-approximate MIS on chordal graphs (Theorems 7-8)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    NotChordalError,
    caterpillar,
    complete_graph,
    cycle_graph,
    is_independent_set,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
    random_interval_graph,
    random_k_tree,
    random_tree,
)
from repro.mis import (
    chordal_mis,
    independence_number_chordal,
    mis_peeling_parameters,
)


def check(graph, epsilon):
    result = chordal_mis(graph, epsilon)
    assert is_independent_set(graph, result.independent_set)
    alpha = independence_number_chordal(graph)
    assert result.size() * (1 + epsilon) >= alpha, (
        f"|I| = {result.size()} vs alpha = {alpha} at eps = {epsilon}"
    )
    return result


class TestParameters:
    def test_values(self):
        d, kappa = mis_peeling_parameters(0.25)
        assert d == 256
        assert kappa == math.ceil(math.log2(256 / 0.25) + 2)

    def test_invalid_epsilon(self):
        for eps in (0, 0.5, 1.0, -1):
            with pytest.raises(ValueError):
                mis_peeling_parameters(eps)


class TestBasics:
    def test_rejects_non_chordal(self):
        with pytest.raises(NotChordalError):
            chordal_mis(cycle_graph(5), 0.3)

    def test_empty(self):
        assert chordal_mis(Graph(), 0.3).independent_set == set()

    def test_complete_graph(self):
        result = check(complete_graph(8), 0.3)
        assert result.size() == 1

    def test_paths(self):
        for n in (1, 2, 17, 120):
            check(path_graph(n), 0.3)

    def test_paper_example(self):
        check(paper_example_graph(), 0.3)

    def test_trees(self):
        for seed in range(4):
            check(random_tree(100, seed=seed), 0.4)

    def test_caterpillar(self):
        check(caterpillar(spine=50, legs_per_vertex=2), 0.3)

    def test_k_tree(self):
        check(random_k_tree(70, 3, seed=2), 0.3)

    def test_rounds_positive_and_bounded(self):
        result = chordal_mis(random_tree(300, seed=7), 0.4)
        d, kappa = mis_peeling_parameters(0.4)
        assert 0 < result.rounds
        assert result.peeling.num_layers() <= kappa


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 40),
    eps=st.sampled_from([0.2, 0.35, 0.49]),
)
def test_algorithm6_property(seed, n, eps):
    g = random_chordal_graph(n, seed=seed)
    check(g, eps)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 3_000), n=st.integers(60, 140))
def test_algorithm6_on_larger_graphs(seed, n):
    g = random_chordal_graph(n, seed=seed, tree_size=n)
    check(g, 0.45)
