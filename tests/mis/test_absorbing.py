"""Absorbing maximum independent sets (Section 7.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    complete_graph,
    path_graph,
    random_chordal_graph,
)
from repro.mis import absorbing_mis, independence_number_chordal, is_absorbing


class TestAbsorbingMIS:
    def test_no_anchor_is_plain_maximum(self):
        g = path_graph(6)
        mis = absorbing_mis(g, g, anchor=None)
        assert len(mis) == independence_number_chordal(g)

    def test_anchored_on_path(self):
        """On a path hanging off a clique, the furthest-first rule starts
        at the free end, so the chosen set absorbs toward the clique."""
        g = Graph()
        g.add_clique([100, 101, 102])  # the outside clique C
        for a, b in zip([102, 0, 1, 2, 3], [0, 1, 2, 3, 4]):
            g.add_edge(a, b)
        component = g.induced_subgraph(range(5))  # the pendant path H
        mis = absorbing_mis(component, g, anchor={100, 101, 102})
        assert component.is_independent_set(mis)
        assert len(mis) == independence_number_chordal(component)
        # furthest simplicial vertex (4) must be chosen first
        assert 4 in mis
        assert is_absorbing(mis, component, g, excluded=set())

    def test_is_maximum_on_random_components(self):
        for seed in range(10):
            g = random_chordal_graph(20, seed=seed)
            comps = g.connected_components()
            comp = g.induced_subgraph(comps[0])
            anchor = set(list(comp.vertices())[:2])
            mis = absorbing_mis(comp, g, anchor=anchor)
            assert comp.is_independent_set(mis)
            assert len(mis) == independence_number_chordal(comp)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(2, 22))
def test_absorbing_property_from_pendant_structures(seed, n):
    """Attach a pendant interval piece to a clique and verify absorption."""
    import random

    rng = random.Random(seed)
    g = path_graph(n)
    clique = [n + i for i in range(3)]
    g.add_clique(clique)
    g.add_edge(n - 1, clique[0])
    component = g.induced_subgraph(range(n))
    mis = absorbing_mis(component, g, anchor=set(clique))
    assert component.is_independent_set(mis)
    assert len(mis) == independence_number_chordal(component)
    assert is_absorbing(mis, component, g, excluded=set())
