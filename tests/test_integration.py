"""Cross-cutting integration tests: whole pipelines on shared instances.

These exercise interactions the per-module tests cannot: the same graph
flowing through coloring, MIS, verification, serialization, and the
distributed drivers, with all invariants checked jointly.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import color_chordal_graph, distributed_color_chordal
from repro.graphs import (
    clique_number,
    dump_json,
    is_proper_coloring,
    load_json,
    minimum_clique_cover_chordal,
    paper_example_graph,
    random_chordal_graph,
    random_k_tree,
    triangulate,
    unit_interval_chain,
)
from repro.mis import (
    chordal_mis,
    distributed_chordal_mis,
    independence_number_chordal,
    interval_mis,
    maximum_independent_set_chordal,
)
from repro.verify import verify_coloring_run, verify_mis_run


class TestJointPipelines:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 3_000), n=st.integers(10, 60))
    def test_coloring_and_mis_coexist(self, seed, n):
        """Both algorithms on one instance; perfect-graph identities hold."""
        g = random_chordal_graph(n, seed=seed)
        coloring = color_chordal_graph(g, k=2)
        mis = chordal_mis(g, 0.4)
        verify_coloring_run(g, coloring).raise_if_failed()
        verify_mis_run(g, mis).raise_if_failed()
        # perfection: chi = omega, alpha = clique cover size
        chi = clique_number(g)
        alpha = independence_number_chordal(g)
        assert coloring.num_colors() >= chi
        assert len(minimum_clique_cover_chordal(g)) == alpha
        # the trivial duality alpha * chi >= n
        if len(g) > 0:
            assert alpha * max(1, chi) >= len(g)

    def test_serialization_preserves_results(self):
        g = random_chordal_graph(50, seed=11)
        restored = load_json(dump_json(g))
        original = color_chordal_graph(g, k=2).coloring
        roundtrip = color_chordal_graph(restored, k=2).coloring
        assert original == roundtrip  # everything is deterministic

    def test_distributed_drivers_agree_with_centralized(self):
        g = random_chordal_graph(70, seed=4, tree_size=70)
        assert (
            distributed_color_chordal(g, k=2).coloring
            == color_chordal_graph(g, k=2).coloring
        )
        assert (
            distributed_chordal_mis(g, 0.4).independent_set
            == chordal_mis(g, 0.4).independent_set
        )

    def test_interval_instance_through_both_mis_algorithms(self):
        """Algorithm 5 directly vs Algorithm 6 (which may call it)."""
        g = unit_interval_chain(250, seed=2)
        alpha = independence_number_chordal(g)
        five = interval_mis(g, 0.3)
        six = chordal_mis(g, 0.3)
        assert five.size() * 1.3 >= alpha
        assert six.size() * 1.3 >= alpha

    def test_triangulated_pipeline_end_to_end(self):
        from tests.graphs.test_triangulation import random_graph

        g = random_graph(45, 0.07, seed=12)
        h = triangulate(g).chordal_graph
        coloring = color_chordal_graph(h, epsilon=0.5)
        assert is_proper_coloring(g, coloring.coloring)
        mis = chordal_mis(h, 0.45)
        assert g.is_independent_set(mis.independent_set)

    def test_paper_example_full_stack(self):
        g = paper_example_graph()
        coloring = color_chordal_graph(g, epsilon=0.5)
        mis = chordal_mis(g, 0.3)
        verify_coloring_run(g, coloring).raise_if_failed()
        verify_mis_run(g, mis).raise_if_failed()
        assert coloring.num_colors() == 3  # chi of the example
        assert mis.size() >= math.ceil(10 / 1.3)  # alpha = 10

    def test_extreme_epsilons(self):
        g = random_k_tree(60, 4, seed=3)
        tight = color_chordal_graph(g, epsilon=0.05)
        loose = color_chordal_graph(g, epsilon=1.9)
        assert tight.num_colors() <= loose.parameters.palette_size(tight.chi)
        verify_coloring_run(g, tight).raise_if_failed()
        verify_coloring_run(g, loose).raise_if_failed()
        near_half = chordal_mis(g, 0.499)
        small = chordal_mis(g, 0.01)
        verify_mis_run(g, near_half).raise_if_failed()
        verify_mis_run(g, small).raise_if_failed()
