"""The docs-consistency checker: extractors, failure modes, and the repo itself."""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestExtractors:
    def test_experiments_md_headings(self):
        text = (
            "# EXPERIMENTS\n"
            "## T3 — Theorem 3: stuff\n"
            "## T5/T6 — Theorems 5-6\n"
            "## F1–F6 — Figures 1–6 (en dashes)\n"
            "## Reading the round counts\n"
            "### T9 — not a section heading\n"
        )
        assert check_docs.experiment_ids_in_experiments_md(text) == [
            "T3", "T5/T6", "F1-F6",
        ]

    def test_design_md_table_rows_skip_prose_cells(self):
        text = (
            "| Id | Paper artifact |\n"
            "| T4 | Theorem 4 |\n"
            "| A1–A3 | ablations |\n"
            "| Graph substrate | not an id |\n"
            "| S0 | bench-only, allowlisted |\n"
        )
        assert check_docs.experiment_ids_in_design_md(text) == ["T4", "A1-A3"]

    def test_bench_only_ids_are_excluded_everywhere(self):
        text = "## S0 — substrate microbenchmarks\n"
        assert check_docs.experiment_ids_in_experiments_md(text) == []

    def test_cli_subcommands_match_parser(self):
        assert check_docs.cli_subcommands() == [
            "chaos", "color", "faults", "generate", "info", "lint", "mis",
            "report", "run", "trace",
        ]

    def test_package_inventory(self):
        packages = check_docs.package_inventory(REPO_ROOT / "src")
        assert "runner" in packages and "graphs" in packages
        assert "__pycache__" not in packages


class TestCheck:
    def test_this_repository_is_consistent(self):
        assert check_docs.check(REPO_ROOT) == []

    @pytest.fixture
    def broken_root(self, tmp_path):
        """A synthetic repo root with every class of inconsistency."""
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "EXPERIMENTS.md").write_text(
            "## T3 — real\n## Z9 — bogus id\n"
        )
        (tmp_path / "DESIGN.md").write_text("| T4 | Theorem 4 |\n")
        (tmp_path / "README.md").write_text("only `python -m repro info` here\n")
        return tmp_path

    def test_problems_are_itemized(self, broken_root):
        problems = check_docs.check(broken_root)
        text = "\n".join(problems)
        assert "'Z9' is not in the repro.runner registry" in text
        assert "subcommand 'run' is undocumented" in text
        assert "docs/architecture.md: file missing" in text
        assert "docs/runner.md: file missing" in text
        assert "docs/tracing.md: file missing" in text
        assert "docs/faults.md: file missing" in text
        assert "docs/index.md: file missing" in text
        # the one documented subcommand is not flagged
        assert "'info' is undocumented" not in text

    def test_unlinked_docs_page_is_flagged(self, broken_root):
        docs = broken_root / "docs"
        docs.mkdir()
        (docs / "orphan.md").write_text("# nobody links me\n")
        problems = check_docs.check(broken_root)
        text = "\n".join(problems)
        assert "README.md: docs page 'docs/orphan.md' is never linked" in text

    def test_index_must_map_every_page_and_subcommand(self, broken_root):
        docs = broken_root / "docs"
        docs.mkdir()
        (docs / "index.md").write_text("# index with no entries\n")
        (docs / "extra.md").write_text("# a page the index ignores\n")
        problems = check_docs.check(broken_root)
        text = "\n".join(problems)
        assert (
            "docs/index.md: docs page 'extra.md' is missing from the "
            "subsystem map" in text
        )
        assert "docs/index.md: CLI subcommand 'faults' is never mentioned" in text

    def test_faults_doc_terms_enforced(self, broken_root):
        docs = broken_root / "docs"
        docs.mkdir()
        (docs / "faults.md").write_text("# faults, vaguely\n")
        problems = check_docs.check(broken_root)
        text = "\n".join(problems)
        assert "docs/faults.md: 'FaultPlan' is never mentioned" in text
        assert "docs/faults.md: 'self-healing' is never mentioned" in text

    def test_empty_extraction_is_itself_a_problem(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "EXPERIMENTS.md").write_text("no headings here\n")
        problems = check_docs.check(tmp_path)
        assert any(
            "EXPERIMENTS.md: found no experiment ids" in p for p in problems
        )
        assert any("DESIGN.md: file missing" in p for p in problems)

    def test_main_exit_status(self, capsys):
        assert check_docs.main(["--root", str(REPO_ROOT)]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_main_nonzero_on_problems(self, tmp_path, capsys):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        assert check_docs.main(["--root", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "problem(s)" in err
