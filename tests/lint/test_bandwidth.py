"""Static-vs-dynamic cross-validation of the bandwidth pass.

The contract under test is one-sided: the static certificate must
*upper-bound* what the meter observes (`static class >= observed growth
class`), and the shadow checker must find the planted order-dependent
fixture while passing every shipped program.  A `const` certificate on a
program whose measured payload grows would be a certifier soundness bug;
a `ball`/`unbounded` certificate on a flat measurement is mere
pessimism, which is allowed.
"""

from __future__ import annotations

import pytest

from repro.graphs import cycle_graph, path_graph
from repro.lint import CLASS_ORDER, certificates_for_modules, load_modules
from repro.lint.cli import _sanitize_suite
from repro.localmodel import MessageMeter, SyncNetwork, shadow_check

from .conftest import BANDWIDTH_CHEATERS
from .fixtures.bandwidth_programs import (
    EndlessFloodProgram,
    GossipOrderProgram,
    LeakyGatherProgram,
)


def measured_max_words(graph, factory, max_rounds=500):
    meter = MessageMeter()
    SyncNetwork(graph, factory, sinks=[meter]).run(max_rounds=max_rounds)
    return meter.max_payload_words


@pytest.fixture(scope="module")
def fixture_certs():
    certs = certificates_for_modules(load_modules([BANDWIDTH_CHEATERS]))
    return {c.program: c for c in certs}


class TestStaticUpperBoundsObserved:
    """`static class >= observed growth class`, program by program."""

    def test_flood_certificate_admits_its_measured_growth(self, fixture_certs):
        small = measured_max_words(cycle_graph(8), EndlessFloodProgram)
        large = measured_max_words(cycle_graph(32), EndlessFloodProgram)
        assert large >= 2 * small  # the fixture genuinely floods
        # growing measurement demands a class above `const`
        cert = fixture_certs["EndlessFloodProgram"]
        assert cert.class_index > CLASS_ORDER.index("const")
        assert cert.message_class == "unbounded"

    def test_leaky_gather_growth_is_bounded_by_its_horizon(self, fixture_certs):
        # ball class: growth follows the radius, not n
        flat_n = [
            measured_max_words(
                cycle_graph(n), lambda v, nbrs: LeakyGatherProgram(v, nbrs, radius=2)
            )
            for n in (16, 48)
        ]
        assert flat_n[0] == flat_n[1]
        by_radius = [
            measured_max_words(
                cycle_graph(64), lambda v, nbrs, r=r: LeakyGatherProgram(v, nbrs, radius=r)
            )
            for r in (2, 4)
        ]
        assert by_radius[1] > by_radius[0]
        assert fixture_certs["LeakyGatherProgram"].message_class == "ball"

    def test_every_const_stock_program_measures_flat(self):
        """The acceptance inequality over the whole shipped suite."""
        from repro.runner.cells import c1_cell

        for program in ("bfs", "leader", "echo", "linial", "luby", "coloring"):
            small = c1_cell(program=program, n=16, seed=0)
            large = c1_cell(program=program, n=64, seed=0)
            assert small["static_class"] == large["static_class"] == "const"
            assert large["max_words"] == small["max_words"], program

    def test_ball_stock_program_growth_tracks_radius(self):
        from repro.runner.cells import c1_cell

        small = c1_cell(program="gather", n=16, seed=0)
        large = c1_cell(program="gather", n=64, seed=0)
        assert small["static_class"] == "ball"
        assert small["horizon"] == "radius"
        # the sweep scales radius with n, so the ball row must grow --
        # and the static class admits it (ball > const in CLASS_ORDER)
        assert large["max_words"] > small["max_words"]
        assert CLASS_ORDER.index(small["static_class"]) > CLASS_ORDER.index("const")


class TestShadowChecker:
    def test_planted_fixture_is_found(self):
        report = shadow_check(cycle_graph(8), GossipOrderProgram)
        assert not report.deterministic
        kinds = {d.kind for d in report.divergences}
        assert "transcript" in kinds or "outputs" in kinds

    def test_divergence_names_the_first_bad_round(self):
        report = shadow_check(cycle_graph(8), GossipOrderProgram)
        transcript_divs = [d for d in report.divergences if d.kind == "transcript"]
        assert transcript_divs and all(d.round_no == 1 for d in transcript_divs)

    def test_leaky_programs_can_still_be_deterministic(self):
        # L7/L8 are bandwidth sins, not determinism sins: dict-merge
        # accumulation is order-insensitive, so the shadow run passes
        for cls in (EndlessFloodProgram, LeakyGatherProgram):
            assert shadow_check(cycle_graph(8), cls).deterministic, cls.__name__

    def test_every_shipped_program_is_deterministic(self):
        for name, graph, factory in _sanitize_suite():
            report = shadow_check(graph, factory)
            assert report.deterministic, (name, report.divergences)

    def test_order_sensitive_outputs_differ_between_seeds(self):
        base = SyncNetwork(path_graph(6), GossipOrderProgram).run()
        permuted = SyncNetwork(
            path_graph(6), GossipOrderProgram, inbox_order=1
        ).run()
        # degree-2 interior nodes relay whichever neighbor iterates first
        assert base != permuted
