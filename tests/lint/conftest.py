"""Local pytest plugin for the conformance suite.

Registers session-scoped fixtures so the (comparatively expensive)
package-wide AST analysis runs once per session, shared by every test in
``tests/lint``.  ``package_findings`` is the same analysis that
``python -m repro.lint`` performs in CI; keeping it inside the test run
means a conformance regression fails ``pytest`` even where the standalone
lint step is not wired up.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.lint import analyze_paths

REPRO_PACKAGE = Path(repro.__file__).resolve().parent
FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"
CHEATERS = FIXTURES_DIR / "cheating_programs.py"
BANDWIDTH_CHEATERS = FIXTURES_DIR / "bandwidth_programs.py"
BASELINE = Path(__file__).resolve().parents[2] / "tools" / "lint_baseline.json"


@pytest.fixture(scope="session")
def package_findings():
    """Lint findings for the whole installed repro package."""
    return analyze_paths([REPRO_PACKAGE])


@pytest.fixture(scope="session")
def cheater_findings():
    """Lint findings for the deliberately nonconforming fixture programs."""
    return analyze_paths([CHEATERS])


@pytest.fixture(scope="session")
def bandwidth_findings():
    """Lint findings for the deliberately bandwidth-leaky fixture programs."""
    return analyze_paths([BANDWIDTH_CHEATERS])
