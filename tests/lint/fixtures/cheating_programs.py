"""Deliberately nonconforming node programs -- the linter's crash-test dummies.

Every class here violates exactly one of the L1-L6 conformance rules (see
:mod:`repro.lint.rules`).  The static analyzer must flag each violation
with its file and line; the runtime-detectable ones (L4/L5) must also blow
up under sealed execution (``SyncNetwork(..., sealed=True)``) while running
to completion -- silently producing invalid science -- without it.  Keep
this file OUT of ``src/``: the package-wide lint run must stay clean.
"""

from __future__ import annotations

import random
from typing import List, Mapping

from repro.graphs.adjacency import Graph, Vertex
from repro.localmodel.network import NodeContext, NodeProgram


class GlobalPeekProgram(NodeProgram):
    """L1: touches the global graph substrate from inside a node."""

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        shadow = Graph(vertices=[self.node])  # builds global state in-node
        self.done = True
        self.output = len(shadow)
        return {}


class SharedScratchProgram(NodeProgram):
    """L2: class-level mutable + mutable default = covert shared channel."""

    scratch: List[Vertex] = []

    def remember(self, seen=[]):
        seen.append(self.node)
        return seen

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        SharedScratchProgram.scratch.append(self.node)
        self.done = True
        self.output = len(self.scratch) + len(self.remember())
        return {}


class CoinFlipProgram(NodeProgram):
    """L3: unseeded module-level randomness in a supposedly LOCAL node."""

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        self.done = True
        self.output = random.random()
        return {}


class NosyProgram(NodeProgram):
    """L4: asks the inbox about a vertex it is not adjacent to."""

    def __init__(self, node: Vertex, neighbors: List[Vertex], victim: Vertex):
        super().__init__(node, neighbors)
        self.victim = victim

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        if ctx.round_number == 0:
            return self.broadcast(("hello", self.node))
        self.done = True
        self.output = ctx.inbox.get(self.victim)
        return {}


class MessageTamperProgram(NodeProgram):
    """L5: writes into a message object another node delivered."""

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        if ctx.round_number == 0:
            return self.broadcast({"from": self.node})
        for sender, message in ctx.inbox.items():
            message["tampered"] = True
        self.done = True
        self.output = sorted(m.get("from") for m in ctx.inbox.values())
        return {}


class InboxTamperProgram(NodeProgram):
    """L5: clears its inbox mid-step, corrupting the round's state."""

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        if ctx.round_number == 0:
            return self.broadcast(("ping", self.node))
        received = len(ctx.inbox)
        ctx.inbox.clear()
        self.done = True
        self.output = received
        return {}


class ContextTamperProgram(NodeProgram):
    """L5: reassigns a field of the (read-only) node context."""

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        ctx.round_number = 0
        self.done = True
        self.output = ctx.round_number
        return {}


class SilentCountdownProgram(NodeProgram):
    """L6: counts rounds in silence without declaring ``always_active``.

    After the round-0 hello nobody sends anything, so the active-set
    scheduler stops stepping everyone while ``done`` is still False --
    the run starves instead of reaching the budget.  The dense reference
    scheduler (and declaring ``always_active = True``) completes it.
    """

    def __init__(self, node: Vertex, neighbors: List[Vertex], budget: int = 5):
        super().__init__(node, neighbors)
        self.budget = budget

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        if ctx.round_number >= self.budget:
            self.done = True
            self.output = ctx.round_number
            return {}
        if ctx.round_number == 0:
            return self.broadcast(("hello", self.node))
        return {}
