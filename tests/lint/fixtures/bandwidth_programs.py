"""Deliberately bandwidth-violating node programs -- the L7-L9 crash dummies.

Companion to ``cheating_programs.py`` (which covers L1-L6): every class
here violates exactly one of the bandwidth rules, and -- unlike the L1-L6
cheaters -- every class here *runs correctly*, because the dynamic half
of the bandwidth pass (:class:`~repro.localmodel.meter.MessageMeter`,
:func:`~repro.localmodel.shadow.shadow_check`) must be able to execute
them and observe the violation at runtime:

* :class:`EndlessFloodProgram` -- L7: re-broadcasts an ever-growing rumor
  map every round, terminating on *content* (no new rumors) rather than
  a round horizon, so the static pass cannot bound the payload;
* :class:`LeakyGatherProgram` -- L8: declares ``radius`` but keeps
  flooding its accumulated ball until ``self.budget`` (= 2 * radius),
  shipping state older than the declared radius;
* :class:`GossipOrderProgram` -- L9: relays whichever message happens to
  iterate first out of its inbox, so its transcript and outputs diverge
  under permuted inbox order (the planted fixture the shadow checker
  must find).

Keep this file OUT of ``src/``: the package-wide lint run must stay
clean modulo the checked-in baseline.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.graphs.adjacency import Vertex
from repro.localmodel.network import NodeContext, NodeProgram


class EndlessFloodProgram(NodeProgram):
    """L7: unbounded payload growth -- a content-terminated rumor flood.

    Every round each node merges all received rumor maps into its own and
    re-broadcasts the whole map.  It stops when a round taught it nothing
    new -- a perfectly reasonable convergence test that nevertheless gives
    the static pass no round horizon, so the per-round payload is
    unbounded in the program text (and really does grow with n at
    runtime, which the meter cross-check asserts).
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex]):
        super().__init__(node, neighbors)
        self.known = {node: 0}

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        before = len(self.known)
        for rumor in ctx.inbox.values():
            self.known.update(rumor)
        if ctx.round_number > 0 and len(self.known) == before:
            self.done = True
            self.output = len(self.known)
            return {}
        return self.broadcast(dict(self.known))


class LeakyGatherProgram(NodeProgram):
    """L8: ball-radius leak -- declares ``radius`` but floods past it.

    The round horizon exists (``self.budget``), so the payload is a ball
    -- but of radius ``2 * radius``, not the declared one.  Downstream
    round accounting keyed to ``radius`` would under-charge this program
    by half its actual gathering depth.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex], radius: int = 2):
        super().__init__(node, neighbors)
        self.radius = radius
        self.budget = 2 * radius
        self.states = {node: tuple(neighbors)}

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        for ball in ctx.inbox.values():
            self.states.update(ball)
        if ctx.round_number >= self.budget:
            self.done = True
            self.output = sorted(self.states)
            return {}
        return self.broadcast(dict(self.states))


class GossipOrderProgram(NodeProgram):
    """L9: schedule dependence -- relays the first-iterated inbox entry.

    Round 0 announces the node id; round 1 relays whichever announcement
    ``next(iter(...))`` happens to yield, which is the inbox insertion
    order -- a property the LOCAL model never promises.  On any graph
    with a degree->=2 vertex both the round-1 transcript and the final
    outputs change when the inbox is permuted, which is exactly what
    :func:`~repro.localmodel.shadow.shadow_check` must detect.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex]):
        super().__init__(node, neighbors)
        self.first_heard = None

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        if ctx.round_number == 0:
            return self.broadcast(("hello", self.node))
        if ctx.round_number == 1:
            if ctx.inbox:
                self.first_heard = next(iter(ctx.inbox.values()))
            return self.broadcast(("relay", self.first_heard))
        self.done = True
        self.output = self.first_heard
        return {}
