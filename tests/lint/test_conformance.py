"""Cross-validation of the static analyzer and the sealed runtime.

The contract: the repro package itself is clean; every deliberately
cheating fixture program is flagged statically at its file:line; and the
runtime-detectable cheats (L4 peeking, L5 tampering) are also caught by
sealed execution while running to completion -- producing silently invalid
results -- without it.
"""

from __future__ import annotations

import json

import pytest

from repro.graphs import path_graph
from repro.lint import active_findings, main as lint_main
from repro.localmodel import SealedContextError, SyncNetwork

from .conftest import CHEATERS, FIXTURES_DIR
from .fixtures.cheating_programs import (
    CoinFlipProgram,
    ContextTamperProgram,
    GlobalPeekProgram,
    InboxTamperProgram,
    MessageTamperProgram,
    NosyProgram,
    SharedScratchProgram,
    SilentCountdownProgram,
)


class TestPackageConformance:
    def test_repro_package_is_clean_modulo_baseline(self, package_findings):
        """Every active finding is excused, by name, in the checked-in baseline."""
        from repro.lint import apply_baseline, load_baseline

        from .conftest import BASELINE

        entries = load_baseline(BASELINE)
        remaining, baselined, unused = apply_baseline(
            active_findings(package_findings), entries
        )
        assert remaining == []
        assert unused == []
        assert {(e.rule, e.symbol) for e in entries} == {
            (f.rule, f.symbol) for f in baselined
        }

    def test_cli_exits_zero_on_package_with_baseline(self, capsys):
        from .conftest import BASELINE

        assert lint_main(["--baseline", str(BASELINE)]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out
        assert "excused by baseline" in out

    def test_cli_exits_nonzero_on_package_without_baseline(self, capsys):
        # the one tolerated L9 (LinialPathProgram's inbox materialization,
        # shadow-verified order-insensitive) is active without the baseline
        assert lint_main([]) == 1
        out = capsys.readouterr().out
        assert "L9" in out and "LinialPathProgram" in out


class TestStaticDetection:
    EXPECTED = {
        "L1": "GlobalPeekProgram.step",
        "L3": "CoinFlipProgram.step",
        "L4": "NosyProgram.step",
        "L6": "SilentCountdownProgram.step",
    }

    def test_every_rule_fires_on_the_fixtures(self, cheater_findings):
        assert {f.rule for f in active_findings(cheater_findings)} == {
            "L1",
            "L2",
            "L3",
            "L4",
            "L5",
            "L6",
        }

    @pytest.mark.parametrize("rule,symbol", sorted(EXPECTED.items()))
    def test_single_violation_rules_name_the_culprit(
        self, cheater_findings, rule, symbol
    ):
        matches = [f for f in cheater_findings if f.rule == rule]
        assert [f.symbol for f in matches] == [symbol]

    def test_l2_catches_class_attribute_and_default_argument(self, cheater_findings):
        symbols = {f.symbol for f in cheater_findings if f.rule == "L2"}
        assert symbols == {"SharedScratchProgram", "SharedScratchProgram.remember"}

    def test_l5_catches_all_three_tamper_styles(self, cheater_findings):
        symbols = {f.symbol for f in cheater_findings if f.rule == "L5"}
        assert symbols == {
            "MessageTamperProgram.step",
            "InboxTamperProgram.step",
            "ContextTamperProgram.step",
        }

    def test_findings_carry_real_locations(self, cheater_findings):
        source_lines = CHEATERS.read_text().splitlines()
        for f in cheater_findings:
            assert f.path.endswith("cheating_programs.py")
            assert 1 <= f.line <= len(source_lines)

    def test_cli_text_report_and_exit_code(self, capsys):
        assert lint_main([str(CHEATERS)]) == 1
        out = capsys.readouterr().out
        for rule in ("L1", "L2", "L3", "L4", "L5", "L6"):
            assert rule in out
        assert "cheating_programs.py:" in out

    def test_cli_json_report(self, capsys):
        assert lint_main(["--format=json", str(CHEATERS)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["total"] == len(report["findings"]) > 0
        assert set(report["summary"]["by_rule"]) == {
            "L1", "L2", "L3", "L4", "L5", "L6",
        }
        for finding in report["findings"]:
            assert finding["line"] >= 1 and finding["path"].endswith(
                "cheating_programs.py"
            )

    def test_cli_select_filters_rules(self, capsys):
        assert lint_main(["--select", "L3", str(CHEATERS)]) == 1
        out = capsys.readouterr().out
        assert "L3" in out and "L1" not in out

    def test_cli_rejects_unknown_path(self):
        assert lint_main([str(FIXTURES_DIR / "no_such_file.py")]) == 2


def _run(program_factory, sealed, n=4):
    net = SyncNetwork(path_graph(n), program_factory, sealed=sealed)
    return net.run(max_rounds=10)


class TestSealedRuntimeDetection:
    """The dynamic half: cheats that sealed execution catches red-handed."""

    def test_nosy_peek_raises_only_when_sealed(self):
        n = 4
        factory = lambda v, nbrs: NosyProgram(v, nbrs, victim=(v + 2) % n)
        outputs = _run(factory, sealed=False, n=n)
        assert set(outputs) == set(range(n))  # ran to completion unsealed
        with pytest.raises(SealedContextError, match="not one of its declared"):
            _run(factory, sealed=True, n=n)

    def test_message_tamper_raises_only_when_sealed(self):
        outputs = _run(MessageTamperProgram, sealed=False)
        assert all(isinstance(v, list) for v in outputs.values())
        with pytest.raises(SealedContextError, match="frozen"):
            _run(MessageTamperProgram, sealed=True)

    def test_inbox_tamper_raises_only_when_sealed(self):
        outputs = _run(InboxTamperProgram, sealed=False)
        assert outputs == {0: 1, 1: 2, 2: 2, 3: 1}
        with pytest.raises(SealedContextError, match="mutate its inbox"):
            _run(InboxTamperProgram, sealed=True)

    def test_context_tamper_raises_only_when_sealed(self):
        outputs = _run(ContextTamperProgram, sealed=False)
        assert set(outputs.values()) == {0}
        with pytest.raises(SealedContextError, match="read-only"):
            _run(ContextTamperProgram, sealed=True)

    def test_l6_starvation_is_real_under_the_active_scheduler(self):
        # The dynamic counterpart of L6: the flagged fixture genuinely
        # starves under active-set scheduling (the engine detects it and
        # raises instead of spinning), while the dense reference
        # scheduler completes the same program.
        dense = SyncNetwork(path_graph(4), SilentCountdownProgram, scheduler="dense")
        outputs = dense.run(max_rounds=10)
        assert set(outputs.values()) == {5}
        active = SyncNetwork(path_graph(4), SilentCountdownProgram, scheduler="active")
        with pytest.raises(RuntimeError, match="starv"):
            active.run(max_rounds=10)

    def test_statically_invisible_cheats_still_run_sealed(self):
        # L1/L2/L3 violations are pure local computation: no runtime guard
        # can see them, which is exactly why the static analyzer exists.
        for factory in (GlobalPeekProgram, SharedScratchProgram, CoinFlipProgram):
            _run(factory, sealed=True)

    def test_runtime_cheats_are_also_flagged_statically(self, cheater_findings):
        """Every sealed-mode catch has a static counterpart (cross-check)."""
        flagged = {f.symbol for f in active_findings(cheater_findings)}
        for symbol in (
            "NosyProgram.step",
            "MessageTamperProgram.step",
            "InboxTamperProgram.step",
            "ContextTamperProgram.step",
        ):
            assert symbol in flagged
