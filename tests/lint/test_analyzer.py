"""Unit tests for the AST analyzer: rule triggers, non-triggers,
suppressions, and the cross-module subclass closure."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import (
    Finding,
    active_findings,
    analyze_source,
    format_json,
    format_text,
    normalize_codes,
    parse_suppressions,
)


def lint(source: str):
    return active_findings(analyze_source(textwrap.dedent(source)))


def rules_of(source: str):
    return sorted({f.rule for f in lint(source)})


class TestL1GlobalState:
    def test_graph_reference_in_step(self):
        src = """
            from repro.graphs.adjacency import Graph
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    return {u: Graph() for u in self.neighbors}
        """
        assert rules_of(src) == ["L1"]

    def test_sync_network_reference(self):
        src = """
            from repro.localmodel.network import NodeProgram, SyncNetwork
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    self.net = SyncNetwork
                    return {}
        """
        assert rules_of(src) == ["L1"]

    def test_vertex_type_alias_is_not_global_state(self):
        src = """
            from repro.graphs.adjacency import Graph, Vertex
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    v = Vertex
                    return {}
        """
        assert rules_of(src) == []

    def test_module_level_graph_use_is_fine(self):
        src = """
            from repro.graphs.adjacency import Graph
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    return {}
            def harness():
                return Graph()
        """
        assert rules_of(src) == []


class TestL2SharedState:
    def test_module_mutable_mutation(self):
        src = """
            CACHE = {}
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    CACHE[self.node] = 1
                    return {}
        """
        assert rules_of(src) == ["L2"]

    def test_module_mutable_read_is_fine(self):
        src = """
            TABLE = {1: "a"}
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    self.output = len(TABLE)
                    return {}
        """
        assert rules_of(src) == []

    def test_global_statement(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    global counter
                    counter = 1
                    return {}
        """
        assert rules_of(src) == ["L2"]

    def test_instance_state_is_fine(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def __init__(self, node, neighbors):
                    super().__init__(node, neighbors)
                    self.seen = []
                def step(self, ctx):
                    self.seen.append(ctx.round_number)
                    return {}
        """
        assert rules_of(src) == []


class TestL3Nondeterminism:
    def test_from_import_randomness(self):
        src = """
            from random import randrange
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    self.output = randrange(10)
                    return {}
        """
        assert rules_of(src) == ["L3"]

    def test_hash_builtin(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    self.output = hash(str(self.node))
                    return {}
        """
        assert rules_of(src) == ["L3"]

    def test_annotation_does_not_trigger(self):
        src = """
            import random
            class P(NodeProgram):
                always_active = True
                def __init__(self, node, neighbors, rng: random.Random):
                    super().__init__(node, neighbors)
                    self.rng = rng
                def step(self, ctx):
                    self.output = self.rng.random()
                    return {}
        """
        assert rules_of(src) == []

    def test_time_module(self):
        src = """
            import time
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    self.output = time.monotonic()
                    return {}
        """
        assert rules_of(src) == ["L3"]


class TestL4InboxKeys:
    def test_constant_key(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    return {0: ctx.inbox[3]}
        """
        assert rules_of(src) == ["L4"]

    def test_membership_probe(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    if self.spy in ctx.inbox:
                        self.output = True
                    return {}
        """
        assert rules_of(src) == ["L4"]

    def test_neighbor_loop_key_is_fine(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    total = 0
                    for u in self.neighbors:
                        if u in ctx.inbox:
                            total += ctx.inbox[u]
                    for v in ctx.inbox:
                        total += ctx.inbox[v]
                    return {}
        """
        assert rules_of(src) == []

    def test_items_iteration_is_fine(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    best = max((m for _, m in ctx.inbox.items()), default=None)
                    self.output = best
                    return {}
        """
        assert rules_of(src) == []


class TestL5Mutation:
    def test_ctx_attribute_assignment(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    ctx.neighbors = []
                    return {}
        """
        assert rules_of(src) == ["L5"]

    def test_inbox_pop(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    for u in ctx.inbox.keys():
                        ctx.inbox.pop(u)
                    return {}
        """
        assert rules_of(src) == ["L5"]

    def test_mutating_received_message(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    for u, msg in ctx.inbox.items():
                        msg.update(stolen=True)
                    return {}
        """
        assert rules_of(src) == ["L5"]

    def test_copied_message_may_be_mutated(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    merged = {}
                    for u, msg in ctx.inbox.items():
                        mine = dict(msg)
                        mine.update(seen=True)
                        merged[u] = mine
                    return {}
        """
        assert rules_of(src) == []

    def test_storing_message_in_own_dict_is_fine(self):
        # regression: `own[u] = msg` must not taint `own` as a message
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    own = {}
                    for u, msg in ctx.inbox.items():
                        own[u] = msg
                    own.clear()
                    return {}
        """
        assert rules_of(src) == []


class TestL6Starvation:
    def test_silent_actor_without_declaration_fires(self):
        src = """
            class P(NodeProgram):
                def step(self, ctx):
                    if ctx.round_number >= self.budget:
                        self.done = True
                        return {}
                    return self.broadcast(self.best)
        """
        findings = lint(src)
        assert rules_of(src) == ["L6"]
        assert findings[0].symbol == "P.step"

    def test_declaring_true_silences(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    if ctx.round_number >= self.budget:
                        self.done = True
                        return {}
                    return self.broadcast(self.best)
        """
        assert rules_of(src) == []

    def test_declaring_false_silences(self):
        # An explicit False is a conscious "purely event-driven" assertion.
        src = """
            class P(NodeProgram):
                always_active = False
                def step(self, ctx):
                    if ctx.inbox:
                        self.done = True
                        self.output = sum(ctx.inbox.values())
                    return {}
        """
        assert rules_of(src) == []

    def test_wake_next_round_silences(self):
        src = """
            class P(NodeProgram):
                def step(self, ctx):
                    if ctx.round_number < self.budget:
                        self.wake_next_round()
                        return self.broadcast(1)
                    self.done = True
                    return {}
        """
        assert rules_of(src) == []

    def test_unconditional_done_is_exempt(self):
        # Finishes on its first step; round 0 schedules every node, so it
        # can never starve no matter how it reads the inbox.
        src = """
            class P(NodeProgram):
                def step(self, ctx):
                    self.output = len(ctx.inbox)
                    self.done = True
                    return {}
        """
        assert rules_of(src) == []

    def test_guarded_done_is_not_exempt(self):
        src = """
            class P(NodeProgram):
                def step(self, ctx):
                    if ctx.inbox:
                        self.done = True
                    return self.broadcast(1)
        """
        assert rules_of(src) == ["L6"]

    def test_trivial_step_is_exempt(self):
        src = """
            class P(NodeProgram):
                def step(self, ctx):
                    return {}
        """
        assert rules_of(src) == []

    def test_inherited_declaration_counts(self):
        src = """
            class Base(NodeProgram):
                always_active = True
            class Leaf(Base):
                def step(self, ctx):
                    if ctx.round_number >= 3:
                        self.done = True
                        return {}
                    return self.broadcast(1)
        """
        assert rules_of(src) == []


class TestL10HaltedOutputWrite:
    def test_done_guarded_output_store_fires(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    if self.done:
                        self.output = 1
                        return {}
                    self.done = True
                    return {}
        """
        findings = lint(src)
        assert [f.rule for f in findings] == ["L10"]
        assert findings[0].symbol == "P.step"

    def test_all_output_aliases_fire(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    if self.done:
                        self.color = 2
                        self.in_mis = False
                    self.done = True
                    return {}
        """
        assert [f.rule for f in lint(src)] == ["L10", "L10"]

    def test_negated_guard_else_arm_fires(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    if not self.done:
                        self.done = True
                    else:
                        self.output = 9
                    return {}
        """
        assert rules_of(src) == ["L10"]

    def test_compound_and_guard_fires(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    if self.done and ctx.round_number > 4:
                        self.output = ctx.round_number
                    self.done = True
                    return {}
        """
        assert rules_of(src) == ["L10"]

    def test_commit_idiom_is_fine(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    self.done = True
                    self.output = 7
                    return {}
        """
        assert rules_of(src) == []

    def test_done_guarded_early_return_is_fine(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    if self.done:
                        return {}
                    self.output = 7
                    self.done = True
                    return {}
        """
        assert rules_of(src) == []

    def test_repairable_declaration_exempts(self):
        src = """
            class P(NodeProgram):
                always_active = True
                repairable = True
                def step(self, ctx):
                    if self.done:
                        self.output = 1
                    return {}
        """
        assert rules_of(src) == []

    def test_inherited_repairable_counts(self):
        src = """
            class Envelope(NodeProgram):
                always_active = True
                repairable = True
            class Leaf(Envelope):
                def step(self, ctx):
                    if self.done:
                        self.output = 1
                    self.done = True
                    return {}
        """
        assert rules_of(src) == []

    def test_non_output_field_is_fine(self):
        src = """
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    if self.done:
                        self.heartbeat = ctx.round_number
                        self.wake_next_round()
                    self.done = True
                    return {}
        """
        assert rules_of(src) == []


class TestSubclassClosure:
    def test_indirect_subclass_is_analyzed(self):
        src = """
            import random
            class Base(NodeProgram):
                always_active = True
                def helper(self):
                    return 1
            class Leaf(Base):
                def step(self, ctx):
                    return {u: random.random() for u in self.neighbors}
        """
        findings = lint(src)
        assert [f.rule for f in findings] == ["L3"]
        assert findings[0].symbol == "Leaf.step"

    def test_unrelated_class_is_ignored(self):
        src = """
            import random
            class Harness:
                def step(self, ctx):
                    return random.random()
        """
        assert rules_of(src) == []


class TestSuppressions:
    def test_same_line_disable(self):
        src = """
            import random
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    self.output = random.random()  # repro-lint: disable=L3
                    return {}
        """
        findings = analyze_source(textwrap.dedent(src))
        assert active_findings(findings) == []
        assert [f.rule for f in findings if f.suppressed] == ["L3"]

    def test_previous_line_disable(self):
        src = """
            import random
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    # repro-lint: disable=L3
                    self.output = random.random()
                    return {}
        """
        assert lint(src) == []

    def test_disable_does_not_cover_other_rules(self):
        src = """
            import random
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    ctx.neighbors = []  # repro-lint: disable=L3
                    return {}
        """
        assert rules_of(src) == ["L5"]

    def test_file_wide_disable(self):
        src = """
            # repro-lint: disable-file=L3
            import random
            class P(NodeProgram):
                always_active = True
                def step(self, ctx):
                    self.output = random.random()
                    return {}
        """
        assert lint(src) == []

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown repro-lint rule"):
            parse_suppressions("x = 1  # repro-lint: disable=L99\n")

    def test_late_disable_file_raises(self):
        src = "x = 1\n# repro-lint: disable-file=L3\n"
        with pytest.raises(ValueError, match="before the first statement"):
            parse_suppressions(src)

    def test_marker_inside_string_is_ignored(self):
        sup = parse_suppressions('x = "# repro-lint: disable=L1"\n')
        assert not sup.is_suppressed("L1", 1)


class TestReporting:
    FINDINGS = [
        Finding("L3", "a.py", 10, 4, "boom", "P.step"),
        Finding("L1", "a.py", 3, 0, "peek", "P.step", suppressed=True),
    ]

    def test_text_hides_suppressed_by_default(self):
        text = format_text(self.FINDINGS)
        assert "a.py:10:4: L3" in text and "1 finding" in text
        assert "peek" not in text

    def test_text_can_show_suppressed(self):
        text = format_text(self.FINDINGS, show_suppressed=True)
        assert "(suppressed)" in text and "1 finding" in text

    def test_json_summary_counts_active_only(self):
        report = json.loads(format_json(self.FINDINGS, show_suppressed=True))
        assert report["summary"] == {
            "total": 1,
            "by_rule": {"L3": 1},
            "suppressed_count": 1,
        }
        assert len(report["findings"]) == 2

    def test_normalize_codes(self):
        assert normalize_codes("l1, L3") == frozenset({"L1", "L3"})
        assert normalize_codes("all") == frozenset(
            {"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10"}
        )
        with pytest.raises(ValueError):
            normalize_codes("L42")
