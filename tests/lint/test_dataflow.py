"""Unit tests for the message-size abstract interpretation (L7-L9 core).

Everything here is static: tiny inline programs exercise one lattice or
classification decision each, and the shipped programs' certificates are
pinned so a certifier regression shows up as a diff against the table
``repro lint --congest`` prints.  The dynamic cross-validation (meter
and shadow runs) lives in ``test_bandwidth.py``.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.lint import (
    ACC,
    MSG,
    WORD,
    analyze_dataflow,
    analyze_source,
    certify,
)
from repro.lint.analyzer import _ModuleInfo
from repro.lint.suppressions import parse_suppressions

from .conftest import BANDWIDTH_CHEATERS, REPRO_PACKAGE

HEADER = """
from repro.localmodel.network import NodeProgram
"""


def dataflows(body: str):
    src = HEADER + textwrap.dedent(body)
    info = _ModuleInfo("<test>", ast.parse(src), parse_suppressions(src))
    return {df.name: df for df in analyze_dataflow([info])}


def classify(body: str) -> str:
    (df,) = dataflows(body).values()
    return certify(df).message_class


def rules_fired(body: str):
    src = HEADER + textwrap.dedent(body)
    return {f.rule for f in analyze_source(src)}


class TestSizeLattice:
    def test_scalar_broadcast_is_const(self):
        assert classify("""
            class P(NodeProgram):
                def step(self, ctx):
                    return self.broadcast(self.node)
        """) == "const"

    def test_forwarding_one_message_is_const_with_assumption(self):
        (df,) = dataflows("""
            class P(NodeProgram):
                def step(self, ctx):
                    for sender, payload in ctx.inbox.items():
                        return self.broadcast(payload)
                    return {}
        """).values()
        cert = certify(df)
        assert cert.message_class == "const"
        assert df.max_payload_size == MSG
        assert any("forward" in a for a in cert.assumptions)

    def test_whole_inbox_capture_is_acc(self):
        (df,) = dataflows("""
            class P(NodeProgram):
                def step(self, ctx):
                    return self.broadcast(list(ctx.inbox.values()))
        """).values()
        assert df.max_payload_size == ACC

    def test_word_producing_builtins_collapse_to_word(self):
        (df,) = dataflows("""
            class P(NodeProgram):
                def step(self, ctx):
                    return self.broadcast(len(list(ctx.inbox.values())) + 1)
        """).values()
        assert df.max_payload_size == WORD

    def test_silent_program_has_no_payload(self):
        assert classify("""
            class P(NodeProgram):
                def step(self, ctx):
                    self.done = True
                    return {}
        """) == "silent"


class TestAccumulators:
    ACCUMULATING = """
        class P(NodeProgram):
            def __init__(self, node, neighbors):
                super().__init__(node, neighbors)
                self.seen = {}
            def step(self, ctx):
                self.seen.update(ctx.inbox)
                return self.broadcast(dict(self.seen))
    """

    def test_update_from_inbox_marks_inbox_fed_accumulator(self):
        (df,) = dataflows(self.ACCUMULATING).values()
        assert list(df.accumulators) == ["seen"]
        assert df.accumulators["seen"].inbox_fed

    def test_accumulator_without_horizon_is_unbounded(self):
        assert classify(self.ACCUMULATING) == "unbounded"

    def test_round_horizon_bounds_the_accumulator_to_ball(self):
        body = """
            class P(NodeProgram):
                def __init__(self, node, neighbors, radius):
                    super().__init__(node, neighbors)
                    self.radius = radius
                    self.seen = {}
                def step(self, ctx):
                    self.seen.update(ctx.inbox)
                    if ctx.round_number >= self.radius:
                        self.done = True
                        return {}
                    return self.broadcast(dict(self.seen))
        """
        (df,) = dataflows(body).values()
        cert = certify(df)
        assert cert.message_class == "ball"
        assert cert.horizon == "radius"

    def test_pure_rebind_is_not_growth(self):
        # the Linial shape: self.color = f(self.color, ...) re-derives a
        # scalar from the old value -- referencing the old attr is not
        # accumulation unless the new value splices it into a container
        (df,) = dataflows("""
            class P(NodeProgram):
                def __init__(self, node, neighbors):
                    super().__init__(node, neighbors)
                    self.color = node
                def step(self, ctx):
                    self.color = (self.color * 2 + 1) % 7
                    return self.broadcast(self.color)
        """).values()
        assert df.accumulators == {}
        assert certify(df).message_class == "const"

    def test_splicing_rebind_is_growth(self):
        (df,) = dataflows("""
            class P(NodeProgram):
                def __init__(self, node, neighbors):
                    super().__init__(node, neighbors)
                    self.log = []
                def step(self, ctx):
                    self.log = self.log + [ctx.round_number]
                    return self.broadcast(self.log)
        """).values()
        assert list(df.accumulators) == ["log"]


class TestAliasAndBulkSetAlgebra:
    """The delta-gather shapes: growth through a local alias and bulk
    set algebra must not launder accumulation past the certifier."""

    def test_subscript_growth_through_alias_charges_the_attr(self):
        (df,) = dataflows("""
            class P(NodeProgram):
                def __init__(self, node, neighbors):
                    super().__init__(node, neighbors)
                    self._states = {}
                def step(self, ctx):
                    states = self._states
                    for sender, payload in ctx.inbox.items():
                        states[sender] = payload
                    return self.broadcast(1)
        """).values()
        assert list(df.accumulators) == ["_states"]
        assert df.accumulators["_states"].inbox_fed

    def test_mutator_growth_through_alias_charges_the_attr(self):
        (df,) = dataflows("""
            class P(NodeProgram):
                def __init__(self, node, neighbors):
                    super().__init__(node, neighbors)
                    self._edges = set()
                def step(self, ctx):
                    edges = self._edges
                    for sender, payload in ctx.inbox.items():
                        edges.update(payload)
                    return self.broadcast(1)
        """).values()
        assert list(df.accumulators) == ["_edges"]
        assert df.accumulators["_edges"].inbox_fed

    def test_rebound_alias_stops_charging_the_attr(self):
        # once the name is rebound to fresh data it no longer aliases
        # the attribute, so growing it is local-only
        (df,) = dataflows("""
            class P(NodeProgram):
                def __init__(self, node, neighbors):
                    super().__init__(node, neighbors)
                    self._states = {}
                def step(self, ctx):
                    states = self._states
                    states = {}
                    for sender, payload in ctx.inbox.items():
                        states[sender] = payload
                    return self.broadcast(1)
        """).values()
        assert df.accumulators == {}

    def test_set_difference_preserves_message_size(self):
        (df,) = dataflows("""
            class P(NodeProgram):
                def step(self, ctx):
                    for sender, payload in ctx.inbox.items():
                        return self.broadcast(payload - {self.node})
                    return {}
        """).values()
        assert df.max_payload_size == MSG

    def test_local_container_of_messages_is_accumulated_state(self):
        # a local dict filled with one entry per received payload is a
        # whole-inbox capture, exactly like list(ctx.inbox.values())
        assert classify("""
            class P(NodeProgram):
                def step(self, ctx):
                    fresh = {}
                    for sender, payload in ctx.inbox.items():
                        fresh[sender] = payload
                    return self.broadcast(fresh)
        """) == "unbounded"

    def test_delta_forwarding_shape_is_a_bounded_ball(self):
        # the DeltaGatherProgram skeleton: merge inbox deltas through
        # aliases, forward the fresh part with bulk set algebra, stop at
        # the declared radius
        (df,) = dataflows("""
            class P(NodeProgram):
                def __init__(self, node, neighbors, radius):
                    super().__init__(node, neighbors)
                    self.radius = radius
                    self._edges = set()
                def step(self, ctx):
                    edges = self._edges
                    fresh = set()
                    for sender, payload in ctx.inbox.items():
                        new = payload - edges
                        edges.update(new)
                        fresh.update(new)
                    if ctx.round_number >= self.radius:
                        self.done = True
                        return {}
                    return self.broadcast(fresh)
        """).values()
        cert = certify(df)
        assert cert.message_class == "ball"
        assert cert.horizon == "radius"
        assert list(df.accumulators) == ["_edges"]


class TestInterprocedural:
    def test_helper_method_summary_propagates_acc(self):
        assert classify("""
            class P(NodeProgram):
                def snapshot(self, ctx):
                    return dict(ctx.inbox)
                def step(self, ctx):
                    return self.broadcast(self.snapshot(ctx))
        """) == "unbounded"

    def test_module_function_summary_propagates_word(self):
        assert classify("""
            def squash(values):
                return max(values, default=0)
            class P(NodeProgram):
                def step(self, ctx):
                    return self.broadcast(squash(ctx.inbox.values()))
        """) == "const"


class TestRuleEmission:
    def test_l7_fires_on_unbounded_growth(self):
        assert "L7" in rules_fired(TestAccumulators.ACCUMULATING)

    def test_l8_fires_when_horizon_ignores_declared_radius(self):
        body = """
            class P(NodeProgram):
                def __init__(self, node, neighbors, radius):
                    super().__init__(node, neighbors)
                    self.radius = radius
                    self.budget = 2 * radius
                    self.seen = {}
                def step(self, ctx):
                    self.seen.update(ctx.inbox)
                    if ctx.round_number >= self.budget:
                        self.done = True
                        return {}
                    return self.broadcast(dict(self.seen))
        """
        assert "L8" in rules_fired(body)
        assert "L7" not in rules_fired(body)

    def test_l9_fires_on_first_inbox_entry(self):
        assert "L9" in rules_fired("""
            class P(NodeProgram):
                def step(self, ctx):
                    first = next(iter(ctx.inbox.values()))
                    return self.broadcast(first)
        """)

    def test_sorted_inbox_iteration_is_not_a_hazard(self):
        assert rules_fired("""
            class P(NodeProgram):
                def step(self, ctx):
                    total = sum(sorted(ctx.inbox.values()))
                    self.done = True
                    self.output = total
                    return self.broadcast(total)
        """) == set()


class TestShippedCertificates:
    """Pin the `repro lint --congest` table for the stock programs."""

    EXPECTED = {
        "BFSLayerProgram": ("const", None),
        "LeaderElectionProgram": ("const", None),
        "EchoCountProgram": ("const", None),
        "BallGatherProgram": ("ball", "radius"),
        "DeltaGatherProgram": ("ball", "radius"),
        "LinialPathProgram": ("const", None),
        "LubyMISProgram": ("const", None),
        "RandomizedColoringProgram": ("const", None),
    }

    @pytest.fixture(scope="class")
    def package_certs(self):
        from repro.lint import certificates_for_modules, load_modules

        certs = certificates_for_modules(load_modules([REPRO_PACKAGE]))
        return {c.program: c for c in certs}

    def test_every_stock_program_is_certified(self, package_certs):
        assert set(self.EXPECTED) <= set(package_certs)

    @pytest.mark.parametrize("program", sorted(EXPECTED))
    def test_certificate_class_and_horizon(self, package_certs, program):
        cert = package_certs[program]
        assert (cert.message_class, cert.horizon) == self.EXPECTED[program]

    def test_no_shipped_program_is_unbounded(self, package_certs):
        assert all(c.message_class != "unbounded" for c in package_certs.values())


class TestFixtureCertificates:
    @pytest.fixture(scope="class")
    def fixture_certs(self):
        from repro.lint import certificates_for_modules, load_modules

        certs = certificates_for_modules(load_modules([BANDWIDTH_CHEATERS]))
        return {c.program: c for c in certs}

    def test_flood_is_unbounded(self, fixture_certs):
        assert fixture_certs["EndlessFloodProgram"].message_class == "unbounded"

    def test_leaky_gather_is_a_ball_past_its_radius(self, fixture_certs):
        cert = fixture_certs["LeakyGatherProgram"]
        assert cert.message_class == "ball"
        assert cert.horizon == "budget"

    def test_gossip_is_const_but_hazardous(self, fixture_certs):
        cert = fixture_certs["GossipOrderProgram"]
        assert cert.message_class == "const"
        assert cert.hazards >= 1
