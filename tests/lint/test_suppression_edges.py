"""Edge cases of the suppression machinery.

Covers the corners the basic round-trip tests skip: markers on and
around decorated classes, multi-rule markers, stale-marker warnings
(advisory, never failing), and the ``suppressed_count`` field of the
JSON report -- fed both by inline markers and by baseline excusals.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import active_findings, analyze_source, main as lint_main
from repro.lint.suppressions import parse_suppressions

HEADER = "from repro.localmodel.network import NodeProgram\n"


def lint(body: str):
    return analyze_source(HEADER + textwrap.dedent(body))


class TestDecoratedClasses:
    DECORATED = """
        import functools

        @functools.total_ordering
        class RankedProgram(NodeProgram):
            scratch = {{}}  {marker}

            def __eq__(self, other):
                return self.node == other.node

            def __lt__(self, other):
                return self.node < other.node

            def step(self, ctx):
                self.done = True
                return {{}}
    """

    def test_decorated_class_finding_fires_without_marker(self):
        findings = lint(self.DECORATED.format(marker=""))
        assert [f.rule for f in active_findings(findings)] == ["L2"]

    def test_marker_on_attribute_line_suppresses_inside_decorated_class(self):
        findings = lint(self.DECORATED.format(marker="# repro-lint: disable=L2"))
        assert active_findings(findings) == []
        assert [f.rule for f in findings if f.suppressed] == ["L2"]

    def test_marker_on_decorator_line_covers_the_next_line_only(self):
        # line coverage is marker line + the following line; a decorator
        # marker does not blanket the whole class body
        src = HEADER + textwrap.dedent("""
            import functools

            @functools.total_ordering  # repro-lint: disable=L2
            class RankedProgram(NodeProgram):
                scratch = {}

                def __eq__(self, other):
                    return self.node == other.node

                def __lt__(self, other):
                    return self.node < other.node

                def step(self, ctx):
                    self.done = True
                    return {}
        """)
        findings = analyze_source(src)
        assert [f.rule for f in active_findings(findings)] == ["L2"]
        stale = parse_suppressions(src).stale_markers()
        # ... and is therefore reported stale once findings are matched
        assert [rule for _, rule in stale] == ["L2"]

    def test_file_wide_disable_covers_decorated_classes(self):
        src = (
            "# repro-lint: disable-file=L2\n"
            + HEADER
            + textwrap.dedent("""
                import functools

                @functools.total_ordering
                class RankedProgram(NodeProgram):
                    scratch = {}

                    def __eq__(self, other):
                        return self.node == other.node

                    def __lt__(self, other):
                        return self.node < other.node

                    def step(self, ctx):
                        self.done = True
                        return {}
            """)
        )
        findings = analyze_source(src)
        assert active_findings(findings) == []


class TestMultiRuleMarkers:
    TWO_SINS = """
        import random

        class NoisyProgram(NodeProgram):
            scratch = []  {marker}

            def step(self, ctx):
                self.scratch.append(random.random())  {marker}
                self.done = True
                return {{}}
    """

    def test_both_rules_fire_unsuppressed(self):
        findings = lint(self.TWO_SINS.format(marker=""))
        assert {f.rule for f in active_findings(findings)} == {"L2", "L3"}

    def test_one_marker_silences_multiple_rules(self):
        findings = lint(
            self.TWO_SINS.format(marker="# repro-lint: disable=L2,L3")
        )
        assert active_findings(findings) == []
        assert {f.rule for f in findings if f.suppressed} == {"L2", "L3"}

    def test_unrelated_rule_in_the_list_goes_stale_not_wrong(self):
        src = HEADER + textwrap.dedent("""
            class QuietProgram(NodeProgram):
                scratch = []  # repro-lint: disable=L2,L6

                def step(self, ctx):
                    self.done = True
                    return {}
        """)
        assert active_findings(analyze_source(src)) == []
        supp = parse_suppressions(src)
        # replay the match the analyzer performed, then ask what's left
        findings = analyze_source(src)
        assert [f.rule for f in findings if f.suppressed] == ["L2"]


class TestStaleMarkers:
    def test_marker_suppressing_nothing_is_stale(self):
        src = HEADER + textwrap.dedent("""
            class CleanProgram(NodeProgram):
                def step(self, ctx):
                    self.done = True  # repro-lint: disable=L3
                    return {}
        """)
        supp = parse_suppressions(src)
        # staleness = "never hit": with no findings matched, the marker
        # is stale; a hit (as in test_live_marker_is_not_stale) clears it
        assert supp.stale_markers() == [(5, "L3")]
        supp.is_suppressed("L3", 5)
        assert supp.stale_markers() == []

    def test_cli_warns_on_stale_marker_but_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean_program.py"
        clean.write_text(
            HEADER
            + textwrap.dedent("""
                class CleanProgram(NodeProgram):
                    def step(self, ctx):
                        self.done = True  # repro-lint: disable=L3
                        return {}
            """)
        )
        assert lint_main([str(clean)]) == 0
        out = capsys.readouterr().out
        assert "stale suppression of L3" in out
        assert "0 findings" in out

    def test_cli_json_lists_stale_suppressions(self, tmp_path, capsys):
        clean = tmp_path / "clean_program.py"
        clean.write_text(
            HEADER
            + textwrap.dedent("""
                class CleanProgram(NodeProgram):
                    def step(self, ctx):
                        self.done = True  # repro-lint: disable=L3
                        return {}
            """)
        )
        assert lint_main(["--format=json", str(clean)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["stale_suppressions"]) == 1
        entry = report["stale_suppressions"][0]
        assert entry["rule"] == "L3" and entry["path"].endswith("clean_program.py")

    def test_live_marker_is_not_stale(self, tmp_path, capsys):
        prog = tmp_path / "seeded_program.py"
        prog.write_text(
            HEADER
            + textwrap.dedent("""
                import random

                class SeededProgram(NodeProgram):
                    def step(self, ctx):
                        self.output = random.random()  # repro-lint: disable=L3
                        self.done = True
                        return {}
            """)
        )
        assert lint_main([str(prog)]) == 0
        assert "stale" not in capsys.readouterr().out


class TestSuppressedCount:
    """Satellite regression: `summary.suppressed_count` in --format=json."""

    SOURCE = HEADER + textwrap.dedent("""
        import random

        class SeededProgram(NodeProgram):
            def step(self, ctx):
                self.output = random.random()  # repro-lint: disable=L3
                self.done = True
                return {}
    """)

    def test_inline_suppressions_are_counted(self, tmp_path, capsys):
        prog = tmp_path / "seeded_program.py"
        prog.write_text(self.SOURCE)
        assert lint_main(["--format=json", str(prog)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"] == {
            "total": 0,
            "by_rule": {},
            "suppressed_count": 1,
        }
        assert report["findings"] == []  # hidden without --show-suppressed

    def test_show_suppressed_reveals_findings_but_not_the_count(
        self, tmp_path, capsys
    ):
        prog = tmp_path / "seeded_program.py"
        prog.write_text(self.SOURCE)
        assert lint_main(["--format=json", "--show-suppressed", str(prog)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["suppressed_count"] == 1
        assert [f["rule"] for f in report["findings"]] == ["L3"]

    def test_baseline_excusals_count_as_suppressed(self, tmp_path, capsys):
        prog = tmp_path / "seeded_program.py"
        prog.write_text(
            HEADER
            + textwrap.dedent("""
                import random

                class SeededProgram(NodeProgram):
                    def step(self, ctx):
                        self.output = random.random()
                        self.done = True
                        return {}
            """)
        )
        baseline = tmp_path / "baseline.json"
        assert lint_main(["--write-baseline", str(baseline), str(prog)]) == 0
        capsys.readouterr()
        assert (
            lint_main(["--format=json", "--baseline", str(baseline), str(prog)])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["suppressed_count"] == 1
        assert report["baseline"]["matched"] == 1
        assert report["baseline"]["unused_entries"] == []
