"""Unit tests for shadow execution (`repro.localmodel.shadow`)."""

from __future__ import annotations

from typing import List, Mapping

from repro.graphs import cycle_graph, path_graph
from repro.graphs.adjacency import Vertex
from repro.localmodel import (
    BallGatherProgram,
    EchoCountProgram,
    SyncNetwork,
    canonical_transcript,
    shadow_check,
)
from repro.localmodel.network import NodeContext, NodeProgram
from repro.localmodel.trace import RecordingSink


class FirstVoiceProgram(NodeProgram):
    """Order-sensitive on purpose: outputs the first-iterated sender."""

    always_active = True

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        if ctx.round_number == 0:
            return self.broadcast(self.node)
        self.done = True
        self.output = next(iter(ctx.inbox)) if ctx.inbox else None
        return {}


class RelayVoiceProgram(NodeProgram):
    """Ships order into the *transcript*: relays the first-iterated value."""

    always_active = True

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        if ctx.round_number == 0:
            return self.broadcast(self.node)
        if ctx.round_number == 1:
            first = next(iter(ctx.inbox.values())) if ctx.inbox else None
            return self.broadcast(("relay", first))
        self.done = True
        self.output = True
        return {}


class SetVoiceProgram(NodeProgram):
    """Same shape, but reads the inbox as a set -- order-insensitive."""

    always_active = True

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        if ctx.round_number == 0:
            return self.broadcast(self.node)
        self.done = True
        self.output = min(ctx.inbox) if ctx.inbox else None
        return {}


class TestInboxPermutation:
    def test_same_seed_permutes_identically_across_runs(self):
        runs = [
            SyncNetwork(cycle_graph(7), FirstVoiceProgram, inbox_order=5).run()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_different_seeds_expose_order_sensitivity(self):
        baseline = SyncNetwork(cycle_graph(7), FirstVoiceProgram).run()
        permuted = SyncNetwork(
            cycle_graph(7), FirstVoiceProgram, inbox_order=1
        ).run()
        assert baseline != permuted

    def test_permutation_is_invisible_to_order_insensitive_programs(self):
        baseline = SyncNetwork(cycle_graph(7), SetVoiceProgram).run()
        for seed in (1, 2, 3):
            assert (
                SyncNetwork(cycle_graph(7), SetVoiceProgram, inbox_order=seed).run()
                == baseline
            )


class TestShadowCheck:
    def test_order_sensitive_program_diverges(self):
        report = shadow_check(cycle_graph(7), FirstVoiceProgram)
        assert not report.deterministic
        assert {d.seed for d in report.divergences} <= set(report.seeds)
        assert all(d.kind in ("transcript", "outputs", "rounds") for d in report.divergences)

    def test_order_insensitive_program_passes(self):
        report = shadow_check(cycle_graph(7), SetVoiceProgram)
        assert report.deterministic
        assert report.divergences == []

    def test_stock_programs_pass(self):
        report = shadow_check(
            path_graph(6), lambda v, nbrs: EchoCountProgram(v, nbrs, 0)
        )
        assert report.deterministic
        report = shadow_check(
            cycle_graph(8), lambda v, nbrs: BallGatherProgram(v, nbrs, 2, ("s", v))
        )
        assert report.deterministic

    def test_custom_seed_list_is_respected(self):
        report = shadow_check(cycle_graph(7), SetVoiceProgram, seeds=(42,))
        assert report.seeds == (42,)
        assert report.deterministic

    def test_divergence_detail_is_human_readable(self):
        report = shadow_check(cycle_graph(7), FirstVoiceProgram)
        assert report.divergences
        assert all(isinstance(d.detail, str) and d.detail for d in report.divergences)


class TestCanonicalTranscript:
    def record(self, graph, factory, inbox_order=None):
        sink = RecordingSink()
        SyncNetwork(graph, factory, sinks=[sink], inbox_order=inbox_order).run()
        return sink

    def test_transcript_is_stable_for_conforming_programs(self):
        a = canonical_transcript(self.record(cycle_graph(6), SetVoiceProgram))
        b = canonical_transcript(
            self.record(cycle_graph(6), SetVoiceProgram, inbox_order=3)
        )
        assert a == b

    def test_transcript_differs_for_order_shippers(self):
        a = canonical_transcript(self.record(cycle_graph(6), RelayVoiceProgram))
        b = canonical_transcript(
            self.record(cycle_graph(6), RelayVoiceProgram, inbox_order=3)
        )
        assert a != b

    def test_messages_sort_by_sender_receiver_within_a_round(self):
        transcript = canonical_transcript(
            self.record(path_graph(4), lambda v, nbrs: EchoCountProgram(v, nbrs, 0))
        )
        for round_messages in transcript:
            assert round_messages == sorted(round_messages)
