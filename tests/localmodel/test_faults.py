"""The deterministic fault-injection layer (FaultPlan + network hook)."""

import io
import json

import pytest

from repro.graphs import path_graph, star_graph
from repro.localmodel import (
    CrashSpec,
    FaultPlan,
    FaultPlanError,
    JSONLTraceSink,
    MessageMeter,
    MetricsSink,
    RecordingSink,
    SyncNetwork,
    canonical_transcript,
    shadow_check,
)
from repro.localmodel.programs import BFSLayerProgram, EchoCountProgram


def bfs_factory(root=0, budget=12):
    return lambda v, nbrs: BFSLayerProgram(v, nbrs, root, budget)


def echo_factory(root=0):
    return lambda v, nbrs: EchoCountProgram(v, nbrs, root)


class TestFaultPlanValidation:
    def test_probabilities_must_be_probabilities(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(drop=1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(delay=-0.1)

    def test_max_delay_positive(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(delay=0.5, max_delay=0)

    def test_burst_window_sane(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(bursts=((5, 3),))

    def test_one_crash_schedule_per_node(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(CrashSpec(1, 2), CrashSpec(1, 5)))

    def test_recover_after_crash(self):
        with pytest.raises(FaultPlanError):
            CrashSpec(0, 5, recover_round=5)

    def test_unknown_crash_node_rejected_by_network(self):
        with pytest.raises(FaultPlanError, match="unknown node"):
            SyncNetwork(
                path_graph(3),
                bfs_factory(),
                faults=FaultPlan(crashes=(CrashSpec(99, 1),)),
            )


class TestGrammar:
    def test_empty_string_is_identity(self):
        plan = FaultPlan.parse("")
        assert plan.is_empty()
        assert plan.spec() == ""

    def test_round_trip(self):
        text = "drop=0.2,dup=0.1,delay=0.05:3,burst=2-4,crash=3@5-9,seed=7"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.spec()) == plan
        assert plan.max_delay == 3
        assert plan.bursts == ((2, 4),)
        assert plan.crashes == (CrashSpec(3, 5, 9),)

    def test_crash_stop_and_recover_forms(self):
        plan = FaultPlan.parse("crash=2@4,crash=5@1-6")
        assert plan.crashes[0].recover_round is None
        assert plan.crashes[1].recover_round == 6

    def test_bad_tokens_raise(self):
        for bad in ("drop", "drop=x", "wibble=1", "crash=3", "burst=9-4"):
            with pytest.raises(FaultPlanError):
                FaultPlan.parse(bad)


class TestDeterminism:
    def test_decide_is_pure(self):
        plan = FaultPlan(seed=3, drop=0.4, delay=0.3, max_delay=4)
        first = [plan.decide(r, 0, 1) for r in range(50)]
        second = [plan.decide(r, 0, 1) for r in range(50)]
        assert first == second

    def test_decide_independent_per_edge(self):
        plan = FaultPlan(seed=3, drop=0.5)
        fates = {(s, r): plan.decide(2, s, r) for s in range(6) for r in range(6)}
        assert len(set(fates.values())) > 1  # not all edges share one fate

    def test_same_plan_same_run(self):
        g = path_graph(8)
        plan = FaultPlan(seed=5, drop=0.25, delay=0.2, duplicate=0.1)
        runs = []
        for _ in range(2):
            sink = RecordingSink()
            net = SyncNetwork(g, bfs_factory(), sinks=[sink], faults=plan)
            outputs = net.run(max_rounds=200)
            runs.append((outputs, canonical_transcript(sink), net.fault_summary()))
        assert runs[0] == runs[1]


class TestEmptyPlanIdentity:
    """The acceptance criterion: an empty plan is byte-identical."""

    def test_transcript_outputs_stats_identical(self):
        g = path_graph(9)
        bare_sink, empty_sink = RecordingSink(), RecordingSink()
        bare = SyncNetwork(g, bfs_factory(), sinks=[bare_sink])
        empty = SyncNetwork(g, bfs_factory(), sinks=[empty_sink], faults=FaultPlan())
        assert bare.run() == empty.run()
        assert bare.stats == empty.stats
        assert canonical_transcript(bare_sink) == canonical_transcript(empty_sink)

    def test_jsonl_byte_identical(self):
        g = star_graph(4)
        streams = []
        for faults in (None, FaultPlan()):
            stream = io.StringIO()
            net = SyncNetwork(
                g, bfs_factory(budget=4), sinks=[JSONLTraceSink(stream)], faults=faults
            )
            net.run()
            streams.append(stream.getvalue())
        assert streams[0] == streams[1]
        assert '"status"' not in streams[0]

    def test_shadow_check_passes_under_empty_plan(self):
        report = shadow_check(path_graph(7), bfs_factory(budget=8), faults=FaultPlan())
        assert report.deterministic

    def test_empty_plan_summary_all_zero(self):
        net = SyncNetwork(path_graph(4), bfs_factory(budget=5), faults=FaultPlan())
        net.run()
        summary = net.fault_summary()
        assert summary == {
            "dropped": 0, "delayed": 0, "duplicated": 0,
            "crash_events": 0, "recover_events": 0, "corrupt_events": 0,
            "still_crashed": 0,
        }


class TestSinksSeeTaggedRecords:
    def _drop_everything_run(self):
        # a burst over every round: all sends drop, BFS ends at budget
        g = path_graph(4)
        sink = RecordingSink()
        metrics = MetricsSink()
        meter = MessageMeter()
        net = SyncNetwork(
            g,
            bfs_factory(budget=3),
            sinks=[sink, metrics, meter],
            faults=FaultPlan(bursts=((0, 99),)),
        )
        net.run()
        return net, sink, metrics, meter

    def test_recording_sink_sees_dropped(self):
        net, sink, _, _ = self._drop_everything_run()
        statuses = {m.status for r in sink.rounds for m in r.messages}
        assert statuses == {"dropped"}
        # nobody but the root learned a distance
        assert net.outputs()[0] == 0
        assert all(net.outputs()[v] is None for v in (1, 2, 3))

    def test_messages_sent_still_counts_drops(self):
        net, _, metrics, _ = self._drop_everything_run()
        assert net.stats.messages_sent > 0
        assert net.stats.messages_sent == sum(metrics.message_counts)
        assert net.fault_summary()["dropped"] == net.stats.messages_sent

    def test_meter_sees_dropped_payloads(self):
        _, _, _, meter = self._drop_everything_run()
        assert meter.total_payload_words > 0

    def test_jsonl_tags_non_default_status(self):
        stream = io.StringIO()
        net = SyncNetwork(
            path_graph(4),
            bfs_factory(budget=3),
            sinks=[JSONLTraceSink(stream)],
            faults=FaultPlan(bursts=((0, 99),)),
        )
        net.run()
        rounds = [json.loads(line) for line in stream.getvalue().splitlines()]
        tagged = [m for r in rounds for m in r["messages"]]
        assert tagged and all(m["status"] == "dropped" for m in tagged)


class TestDelayAndDuplicate:
    def test_delayed_message_arrives_late_with_late_tag(self):
        # one edge, delay forced by an always-delay plan on round 0 only
        g = path_graph(2)
        plan = FaultPlan(seed=1, delay=1.0, max_delay=1)
        sink = RecordingSink()
        net = SyncNetwork(g, echo_factory(), sinks=[sink], faults=plan)
        outputs = net.run(max_rounds=50)
        assert outputs[0] == 2  # still completes, just later
        statuses = [m.status for r in sink.rounds for m in r.messages]
        assert "delayed" in statuses and "late" in statuses
        # a delayed record never reaches an inbox; its late twin does
        for r in sink.rounds:
            for m in r.messages:
                if m.status == "late":
                    late_round = r.round_number
                if m.status == "delayed":
                    sent_round = r.round_number
        assert late_round > sent_round

    def test_delay_extends_rounds_but_preserves_result(self):
        g = path_graph(5)
        bare = SyncNetwork(g, echo_factory())
        bare_out = bare.run()
        delayed = SyncNetwork(
            g, echo_factory(), faults=FaultPlan(seed=2, delay=0.6, max_delay=3)
        )
        delayed_out = delayed.run(max_rounds=200)
        assert delayed_out == bare_out
        assert delayed.stats.rounds > bare.stats.rounds

    def test_duplicates_do_not_break_idempotent_programs(self):
        g = path_graph(6)
        plan = FaultPlan(seed=4, duplicate=0.8)
        net = SyncNetwork(g, bfs_factory(budget=8), sinks=[], faults=plan)
        assert net.run() == {v: v for v in range(6)}
        assert net.fault_summary()["duplicated"] > 0

    def test_duplicate_copies_not_counted_as_sends(self):
        g = path_graph(4)
        bare = SyncNetwork(g, bfs_factory(budget=6))
        bare.run()
        dup = SyncNetwork(
            g, bfs_factory(budget=6), faults=FaultPlan(seed=1, duplicate=1.0)
        )
        dup.run()
        assert dup.stats.messages_sent == bare.stats.messages_sent


class TestCrashes:
    def test_crash_stop_partitions_the_flood(self):
        g = path_graph(6)
        net = SyncNetwork(
            g, bfs_factory(budget=8), faults=FaultPlan.parse("crash=3@1")
        )
        outputs = net.run()
        assert outputs[0] == 0 and outputs[1] == 1 and outputs[2] == 2
        # the crashed node and everything behind it never learn anything
        assert outputs[3] is None and outputs[4] is None and outputs[5] is None
        assert net.crashed_nodes() == [3]

    def test_crash_recover_heals_when_flood_arrives_after_recovery(self):
        # node 4 is back up (round 3) before the BFS frontier reaches it
        # (round 4), so the one-shot flood still covers everyone
        g = path_graph(6)
        net = SyncNetwork(
            g, bfs_factory(budget=12), faults=FaultPlan.parse("crash=4@1-3")
        )
        outputs = net.run()
        assert outputs == {v: v for v in range(6)}
        summary = net.fault_summary()
        assert summary["crash_events"] == 1
        assert summary["recover_events"] == 1
        assert net.crashed_nodes() == []

    def test_sends_to_crashed_node_are_dropped(self):
        g = path_graph(3)
        sink = RecordingSink()
        net = SyncNetwork(
            g,
            bfs_factory(budget=4),
            sinks=[sink],
            faults=FaultPlan.parse("crash=2@0"),
        )
        net.run()
        to_crashed = [
            m for r in sink.rounds for m in r.messages if m.receiver == 2
        ]
        assert to_crashed and all(m.status == "dropped" for m in to_crashed)

    def test_run_waits_for_scheduled_recovery(self):
        # event-driven echo + a recovery far in the future: the active
        # set empties at round 1, but the run must keep ticking until the
        # recovery fires instead of declaring starvation early.  The heal
        # still fails here (the child's one-shot count was dropped), and
        # it fails *loudly* -- after the recovery round, not before it.
        g = path_graph(3)
        net = SyncNetwork(
            g, echo_factory(), faults=FaultPlan.parse("crash=1@0-8")
        )
        with pytest.raises(RuntimeError, match="starved"):
            net.run(max_rounds=60)
        assert net.stats.rounds >= 8
        assert net.fault_summary()["recover_events"] == 1

    def test_dense_scheduler_also_skips_crashed(self):
        g = path_graph(4)
        net = SyncNetwork(
            g,
            bfs_factory(budget=6),
            scheduler="dense",
            faults=FaultPlan.parse("crash=2@0"),
        )
        outputs = net.run()
        assert outputs[2] is None and outputs[3] is None
