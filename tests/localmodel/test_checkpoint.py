"""Checkpoint/rollback and the crash-recover resume semantics."""

import pytest

from repro.graphs import path_graph
from repro.localmodel import (
    RECOVERY_MODES,
    FaultPlan,
    NodeProgram,
    SyncNetwork,
)
from repro.localmodel.programs import BFSLayerProgram


def bfs_factory(root=0, budget=12):
    return lambda v, nbrs: BFSLayerProgram(v, nbrs, root, budget)


class CountdownProgram(NodeProgram):
    """Counts its own steps and halts at a target -- pure internal progress.

    Crash-recover semantics are visible in how much progress survives
    the outage: ``intact`` keeps the counter, ``restart`` zeroes it,
    ``checkpoint`` rewinds it to the last snapshot.
    """

    always_active = True

    def __init__(self, node, neighbors, target=6):
        super().__init__(node, neighbors)
        self.target = target
        self.count = 0

    def step(self, ctx):
        self.count += 1
        if self.count >= self.target:
            self.output = self.count
            self.done = True
        return {}


def countdown_factory(target=6):
    return lambda v, nbrs: CountdownProgram(v, nbrs, target)


class TestConstructionValidation:
    def test_recovery_modes_constant(self):
        assert RECOVERY_MODES == ("intact", "restart", "checkpoint")

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            SyncNetwork(path_graph(3), bfs_factory(), recovery="hope")

    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            SyncNetwork(path_graph(3), bfs_factory(), checkpoint_every=0)

    def test_checkpoint_recovery_requires_cadence(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            SyncNetwork(path_graph(3), bfs_factory(), recovery="checkpoint")


class TestRecoveryModes:
    def _run(self, recovery, checkpoint_every=None, crash="crash=1@2-4"):
        net = SyncNetwork(
            path_graph(3),
            countdown_factory(target=6),
            faults=FaultPlan.parse(crash),
            recovery=recovery,
            checkpoint_every=checkpoint_every,
        )
        outputs = net.run(max_rounds=200)
        return net, outputs

    def test_intact_resumes_with_state(self):
        # rounds 0,1 counted, down rounds 2,3, resumes at 4 with count=2
        net, outputs = self._run("intact")
        assert outputs[1] == 6
        assert net.stats.rounds == 8  # 2 pre-crash + 2 down + 4 to finish

    def test_restart_resets_to_round_zero_state(self):
        net, outputs = self._run("restart")
        assert outputs[1] == 6
        # the survivor halts at round 6; the victim restarts from count=0
        # at round 4 and needs 6 more rounds
        assert net.stats.rounds == 10

    def test_checkpoint_cadence_one_resumes_near_crash(self):
        net, outputs = self._run("checkpoint", checkpoint_every=1)
        assert outputs[1] == 6
        # cadence 1 snapshots after round 1 (count=2): barely any rework
        assert net.stats.rounds == 8

    def test_checkpoint_beats_restart(self):
        _, _ = self._run("checkpoint", checkpoint_every=1)
        restart_net, _ = self._run("restart")
        checkpoint_net, _ = self._run("checkpoint", checkpoint_every=1)
        assert checkpoint_net.stats.rounds < restart_net.stats.rounds

    def test_sparse_cadence_rewinds_further(self):
        dense_net, _ = self._run("checkpoint", checkpoint_every=1)
        sparse_net, _ = self._run("checkpoint", checkpoint_every=5)
        # cadence 5 last snapshotted at round 0: more rework than cadence 1
        assert sparse_net.stats.rounds > dense_net.stats.rounds

    def test_modes_off_by_default_are_behavior_preserving(self):
        bare = SyncNetwork(path_graph(3), countdown_factory())
        bare_out = bare.run()
        explicit = SyncNetwork(
            path_graph(3),
            countdown_factory(),
            recovery="intact",
            checkpoint_every=None,
        )
        assert explicit.run() == bare_out
        assert explicit.stats == bare.stats

    def test_checkpointing_without_crash_changes_nothing(self):
        bare = SyncNetwork(path_graph(3), countdown_factory())
        bare_out = bare.run()
        snap = SyncNetwork(path_graph(3), countdown_factory(), checkpoint_every=1)
        assert snap.run() == bare_out
        assert snap.stats == bare.stats


class TestRollback:
    def test_rollback_requires_checkpointing(self):
        net = SyncNetwork(path_graph(3), countdown_factory())
        with pytest.raises(ValueError, match="checkpoint_every"):
            net.rollback()

    def test_rollback_unknown_node(self):
        net = SyncNetwork(path_graph(3), countdown_factory(), checkpoint_every=1)
        with pytest.raises(KeyError):
            net.rollback(99)

    def test_rollback_before_any_round_restores_initial_state(self):
        net = SyncNetwork(path_graph(3), countdown_factory(), checkpoint_every=1)
        net.programs[0].count = 99
        assert net.rollback(0) == -1  # construction-time snapshot
        assert net.programs[0].count == 0

    def test_rollback_restores_last_snapshot_and_reschedules(self):
        net = SyncNetwork(path_graph(3), countdown_factory(target=4), checkpoint_every=1)
        outputs = net.run(max_rounds=50)
        assert all(v == 4 for v in outputs.values())
        restored = net.rollback()
        # the final checkpoint caught the programs mid-run or at the
        # finish line; a rolled-back network can run to completion again
        assert restored >= 0
        assert net.run(max_rounds=50) == outputs

    def test_single_node_rollback_leaves_others_alone(self):
        net = SyncNetwork(path_graph(3), countdown_factory(target=4), checkpoint_every=2)
        net.run(max_rounds=50)
        before = {v: p.count for v, p in net.programs.items()}
        net.rollback(1)
        assert net.programs[0].count == before[0]
        assert net.programs[2].count == before[2]
