"""The resilience harness: validators, monitor, retries, classification."""

import pytest

from repro.graphs import cycle_graph, path_graph
from repro.localmodel import (
    CLASSIFICATIONS,
    DEFAULT_FAULT_GRID,
    FaultPlan,
    ReliableProgram,
    SyncNetwork,
    ValidityMonitor,
    fault_grid,
    independent_set_validator,
    proper_coloring_validator,
    resilience_check,
    stock_validator,
    with_retries,
)
from repro.localmodel.programs import (
    EchoCountProgram,
    LeaderElectionProgram,
)


def echo_factory(root=0):
    return lambda v, nbrs: EchoCountProgram(v, nbrs, root)


def leader_factory(budget=12):
    return lambda v, nbrs: LeaderElectionProgram(v, nbrs, budget)


class TestValidators:
    def test_proper_coloring_accepts_and_rejects(self):
        g = path_graph(3)
        assert proper_coloring_validator(g, {0: 1, 1: 2, 2: 1}) == []
        problems = proper_coloring_validator(g, {0: 1, 1: 1, 2: 2})
        assert problems and "0" in problems[0] and "1" in problems[0]

    def test_proper_coloring_ignores_none(self):
        # a node that never decided is incomplete, not improper
        g = path_graph(3)
        assert proper_coloring_validator(g, {0: 1, 1: None, 2: 1}) == []

    def test_independent_set_flags_adjacent_members(self):
        g = path_graph(3)
        assert independent_set_validator(g, {0: True, 1: False, 2: True}) == []
        assert independent_set_validator(g, {0: True, 1: True, 2: False})

    def test_bfs_validator_rejects_underestimates(self):
        g = path_graph(4)
        validate = stock_validator("bfs", g, root=0)
        assert validate(g, {0: 0, 1: 1, 2: 2, 3: 3}) == []
        assert validate(g, {0: 0, 1: 1, 2: None, 3: None}) == []  # partial is fine
        assert validate(g, {0: 0, 1: 1, 2: 1, 3: 3})  # claims a shortcut

    def test_leader_validator_requires_existing_vertex(self):
        g = path_graph(3)
        validate = stock_validator("leader", g)
        assert validate(g, {0: 0, 1: 0, 2: 0}) == []
        assert validate(g, {0: 99, 1: 0, 2: 0})

    def test_echo_validator_bounds_the_count(self):
        g = path_graph(3)
        validate = stock_validator("echo", g, root=0)
        assert validate(g, {0: 3, 1: None, 2: None}) == []
        assert validate(g, {0: 7, 1: None, 2: None})  # more nodes than exist

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            stock_validator("frobnicate", path_graph(2))


class TestValidityMonitor:
    def test_clean_run_records_no_violations(self):
        g = path_graph(4)
        net = SyncNetwork(g, echo_factory())
        monitor = ValidityMonitor(net, stock_validator("echo", g, root=0))
        net.add_sink(monitor)
        net.run()
        assert monitor.violations == []
        assert monitor.first_violation_round is None

    def test_monitor_pinpoints_first_bad_round(self):
        # a validator that trips as soon as node 0 produces any output
        g = path_graph(3)
        net = SyncNetwork(g, echo_factory())

        def nitpick(graph, outputs):
            return ["nope"] if outputs.get(0) is not None else []

        monitor = ValidityMonitor(net, nitpick)
        net.add_sink(monitor)
        net.run()
        assert monitor.first_violation_round is not None
        assert monitor.violations[0][1] == ["nope"]


class TestReliableProgram:
    def test_transparent_without_faults(self):
        g = path_graph(5)
        bare = SyncNetwork(g, echo_factory()).run()
        wrapped = SyncNetwork(g, with_retries(echo_factory())).run()
        assert wrapped == bare

    def test_recovers_one_shot_protocol_from_heavy_loss(self):
        # bare echo starves under a high drop rate; the retry envelope
        # resends until every hop lands
        g = path_graph(5)
        plan = FaultPlan(seed=3, drop=0.5)
        bare = SyncNetwork(g, echo_factory(), faults=plan)
        with pytest.raises(RuntimeError, match="starved"):
            bare.run(max_rounds=500)
        net = SyncNetwork(g, with_retries(echo_factory()), faults=plan)
        outputs = net.run(max_rounds=500)
        assert outputs[0] == 5

    def test_retries_cost_extra_rounds(self):
        g = path_graph(5)
        quiet = SyncNetwork(g, with_retries(echo_factory()))
        quiet.run()
        lossy = SyncNetwork(
            g, with_retries(echo_factory()), faults=FaultPlan(seed=3, drop=0.5)
        )
        lossy.run(max_rounds=500)
        assert lossy.stats.rounds > quiet.stats.rounds

    def test_bounded_resends_give_up(self):
        # drop everything forever: the envelope must stop resending and
        # terminate (with gaps) rather than loop
        g = path_graph(3)
        net = SyncNetwork(
            g,
            with_retries(leader_factory(budget=6), timeout=1, max_resends=2),
            faults=FaultPlan(bursts=((0, 9999),)),
        )
        outputs = net.run(max_rounds=300)
        gave_up = sum(p.gave_up for p in net.programs.values())
        assert gave_up > 0
        # isolated minimum-ID election: everyone elects themselves
        assert outputs == {0: 0, 1: 1, 2: 2}

    def test_duplicate_envelopes_deduplicated(self):
        g = path_graph(4)
        plan = FaultPlan(seed=1, duplicate=1.0)
        outputs = SyncNetwork(g, with_retries(echo_factory()), faults=plan).run(
            max_rounds=200
        )
        assert outputs[0] == 4

    def test_factory_produces_reliable_programs(self):
        factory = with_retries(echo_factory(), timeout=4, max_resends=7)
        program = factory(1, [0, 2])
        assert isinstance(program, ReliableProgram)
        assert program.always_active
        assert program.timeout == 4 and program.max_resends == 7


class TestFaultGrid:
    def test_default_grid_shape(self):
        # 3 drop rates x 2 seeds + 1 burst
        assert len(DEFAULT_FAULT_GRID) == 7
        assert sum(1 for p in DEFAULT_FAULT_GRID if p.bursts) == 1

    def test_grid_is_parameterizable(self):
        grid = fault_grid(drop_rates=(0.1,), seeds=(5,), burst=None)
        assert len(grid) == 1
        assert grid[0].drop == 0.1 and grid[0].seed == 5


class TestResilienceCheck:
    def test_classifications_vocabulary(self):
        assert CLASSIFICATIONS == ("self-healing", "degraded-but-valid", "unsafe")

    def test_leader_bare_is_degraded_retries_self_healing(self):
        g = cycle_graph(6)
        grid = fault_grid(drop_rates=(0.3,), seeds=(1, 2), burst=(1, 3))
        bare = resilience_check(g, leader_factory(), stock_validator("leader", g), grid=grid)
        assert bare.classification == "degraded-but-valid"
        wrapped = resilience_check(
            g, with_retries(leader_factory()), stock_validator("leader", g), grid=grid
        )
        assert wrapped.classification == "self-healing"
        assert all(o.matches_baseline for o in wrapped.outcomes)

    def test_self_healing_under_no_fault_grid(self):
        g = path_graph(4)
        report = resilience_check(
            g,
            echo_factory(),
            stock_validator("echo", g, root=0),
            grid=(FaultPlan(),),
        )
        assert report.classification == "self-healing"
        assert report.rounds_to_recover == 0
        assert report.outcomes[0].injected["dropped"] == 0

    def test_unsafe_when_validator_trips(self):
        # leader program judged by an impossible validator: any elected
        # leader is declared wrong, so the program classifies unsafe
        g = path_graph(3)

        def always_wrong(graph, outputs):
            return ["wrong"] if any(v is not None for v in outputs.values()) else []

        report = resilience_check(
            g, leader_factory(budget=5), always_wrong, grid=(FaultPlan(),)
        )
        assert report.classification == "unsafe"
        assert report.outcomes[0].problems == ("wrong",)

    def test_loud_failures_are_degraded_not_unsafe(self):
        # echo starves under heavy loss: incomplete, error recorded, but
        # the partial outputs are valid, so degraded-but-valid
        g = path_graph(5)
        report = resilience_check(
            g,
            echo_factory(),
            stock_validator("echo", g, root=0),
            grid=(FaultPlan(seed=3, drop=0.5),),
            max_rounds=300,
        )
        assert report.classification == "degraded-but-valid"
        outcome = report.outcomes[0]
        assert not outcome.complete
        assert outcome.error and "starved" in outcome.error

    def test_baseline_failure_raises(self):
        # echo on a cycle is ill-posed (not a tree): the fault-free run
        # never finishes, which is a harness error, not a classification
        g = cycle_graph(4)
        with pytest.raises(RuntimeError, match="baseline"):
            resilience_check(
                g,
                echo_factory(),
                stock_validator("echo", g, root=0),
                grid=(),
                max_rounds=50,
            )

    def test_plan_specs_recorded(self):
        g = path_graph(3)
        grid = fault_grid(drop_rates=(0.05,), seeds=(9,), burst=None)
        report = resilience_check(
            g, leader_factory(budget=6), stock_validator("leader", g), grid=grid
        )
        assert [o.plan for o in report.outcomes] == ["drop=0.05,seed=9"]
