"""The send-vs-deliver counting contract, pinned against the trace.

One definition, three consumers: :data:`DELIVERY_STATUSES` says which
:class:`MessageRecord` statuses reached an inbox (they sum to
``stats.messages_delivered``), :data:`WIRE_STATUSES` says which crossed
the wire (they sum to the :class:`MessageMeter` charges), and
``stats.messages_sent`` counts program sends only.  These tests run the
same workload under delay and duplicate fault plans and reconcile all
three counters against a full :class:`RecordingSink` transcript --
the regression for the era when matured deliveries bypassed
``record_round`` and the meter double-charged late copies.
"""

import pytest

from repro.graphs import path_graph, random_chordal_graph
from repro.localmodel import (
    DELIVERY_STATUSES,
    WIRE_STATUSES,
    FaultPlan,
    MessageMeter,
    RecordingSink,
    SyncNetwork,
    gather_balls,
)
from repro.localmodel.gather import BallGatherProgram


def _run_gather_network(graph, radius, faults=None, sinks=None, max_rounds=None):
    net = SyncNetwork(
        graph,
        lambda v, nbrs: BallGatherProgram(v, nbrs, radius, ("s", v)),
        faults=faults,
        sinks=sinks,
    )
    net.run(max_rounds=max_rounds if max_rounds is not None else radius + 1)
    return net


def _status_counts(recording):
    counts = {}
    for rt in recording.rounds:
        for record in rt.messages:
            counts[record.status] = counts.get(record.status, 0) + 1
    return counts


class TestContractDefinitions:
    def test_partition_of_statuses(self):
        # every status is either a delivery, a wire transmission, or both;
        # "late" delivers without a new transmission, "dropped"/"delayed"
        # transmit without delivering
        assert DELIVERY_STATUSES == {"delivered", "late", "duplicate"}
        assert WIRE_STATUSES == {"delivered", "dropped", "delayed", "duplicate"}
        assert DELIVERY_STATUSES | WIRE_STATUSES == {
            "delivered",
            "dropped",
            "delayed",
            "late",
            "duplicate",
        }


class TestReliablePath:
    def test_sent_equals_delivered_without_faults(self):
        net = _run_gather_network(random_chordal_graph(14, seed=9), 3)
        assert net.stats.messages_sent > 0
        assert net.stats.messages_delivered == net.stats.messages_sent


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan(delay=1.0, max_delay=2, seed=3),
        FaultPlan(duplicate=1.0, seed=3),
        FaultPlan(delay=0.5, duplicate=0.5, max_delay=3, seed=17),
    ],
    ids=["all-delayed", "all-duplicated", "delay+duplicate"],
)
class TestFaultyCounting:
    def test_stats_reconcile_with_transcript(self, plan):
        recording = RecordingSink()
        # generous budget so delayed copies can mature inside the run
        net = _run_gather_network(
            path_graph(10), 3, faults=plan, sinks=[recording], max_rounds=12
        )
        counts = _status_counts(recording)

        # program sends: a record is written at send time with status
        # delivered/dropped/delayed ("duplicate" records are the matured
        # extra copies, never sends)
        sends = (
            counts.get("delivered", 0)
            + counts.get("dropped", 0)
            + counts.get("delayed", 0)
        )
        assert net.stats.messages_sent == sends

        # deliveries: exactly the DELIVERY_STATUSES records -- matured
        # late/duplicate copies must be counted (the old bug skipped them)
        delivered = sum(counts.get(s, 0) for s in DELIVERY_STATUSES)
        assert net.stats.messages_delivered == delivered

    def test_meter_charges_wire_transmissions_once(self, plan):
        recording = RecordingSink()
        meter = MessageMeter()
        _run_gather_network(
            path_graph(10),
            3,
            faults=plan,
            sinks=[recording, meter],
            max_rounds=12,
        )
        counts = _status_counts(recording)
        wire = sum(counts.get(s, 0) for s in WIRE_STATUSES)
        assert sum(r["messages"] for r in meter.per_round) == wire
        # a matured "late" record is a re-delivery of an already-charged
        # "delayed" transmission and must not be charged again (copies
        # still in flight when the run ends never mature at all)
        assert counts.get("late", 0) <= counts.get("delayed", 0)


class TestDelayedDeliveriesReachStats:
    def test_late_and_duplicate_copies_count_as_deliveries(self):
        plan = FaultPlan(delay=1.0, max_delay=1, seed=5)
        net = _run_gather_network(path_graph(8), 2, faults=plan, max_rounds=10)
        # with every message delayed, direct deliveries are zero; all of
        # messages_delivered comes from matured "late" records
        assert net.stats.messages_delivered > 0

        dup = FaultPlan(duplicate=1.0, seed=5)
        net2 = _run_gather_network(path_graph(8), 2, faults=dup, max_rounds=10)
        assert net2.stats.messages_delivered > net2.stats.messages_sent


class TestExactRoundBudget:
    def test_run_succeeds_with_exact_budget(self):
        for radius in (0, 1, 3):
            net = _run_gather_network(path_graph(9), radius)
            assert net.stats.rounds == radius + 1

    def test_run_fails_one_below_exact_budget(self):
        with pytest.raises(RuntimeError, match="did not terminate"):
            _run_gather_network(path_graph(9), 3, max_rounds=3)

    def test_gather_balls_runs_on_exact_budget(self):
        # gather_balls passes max_rounds=radius+1 to the network: any
        # off-by-one in the programs' cutoff logic fails loudly here
        balls, rounds = gather_balls(path_graph(9), 4)
        assert rounds == 5
        assert set(balls) == set(range(9))
