"""Network tracing: exact communication patterns of the stock programs."""

import pytest

from repro.graphs import path_graph, star_graph
from repro.localmodel.gather import BallGatherProgram
from repro.localmodel.programs import BFSLayerProgram
from repro.localmodel.trace import TracedNetwork


class TestTracedRuns:
    def test_ball_gather_floods_exactly_radius_rounds(self):
        g = path_graph(6)
        radius = 2
        net = TracedNetwork(
            g, lambda v, nbrs: BallGatherProgram(v, nbrs, radius, None)
        )
        net.run()
        sending = [r for r in net.rounds if r.message_count > 0]
        assert len(sending) == radius  # one flooding round per hop
        # every sending round uses every edge in both directions
        assert all(r.message_count == 2 * g.num_edges() for r in sending)

    def test_bfs_trace_shows_wavefront(self):
        g = path_graph(5)
        net = TracedNetwork(
            g, lambda v, nbrs: BFSLayerProgram(v, nbrs, root=0, budget=6)
        )
        out = net.run()
        assert out == {i: i for i in range(5)}
        # node i first sends in round i (when its distance settles)
        first_send = {}
        for r in net.rounds:
            for m in r.messages:
                first_send.setdefault(m.sender, r.round_number)
        assert first_send[0] == 0
        assert first_send[1] == 1
        assert first_send[4] == 4

    def test_timeline_rendering(self):
        g = star_graph(3)
        net = TracedNetwork(
            g, lambda v, nbrs: BFSLayerProgram(v, nbrs, root=0, budget=3)
        )
        net.run()
        text = net.timeline(max_messages_per_round=2)
        assert "round 0:" in text
        assert "sent:" in text
        assert "+" in text or "->" in text

    def test_total_and_quiet(self):
        g = path_graph(4)
        net = TracedNetwork(
            g, lambda v, nbrs: BFSLayerProgram(v, nbrs, root=0, budget=5)
        )
        net.run()
        assert net.total_messages() >= 3
        assert isinstance(net.quiet_rounds(), list)

    def test_round_budget(self):
        from repro.localmodel import NodeProgram

        class Stuck(NodeProgram):
            def step(self, ctx):
                return {}

        net = TracedNetwork(path_graph(3), Stuck)
        with pytest.raises(RuntimeError):
            net.run(max_rounds=4)
