"""The chaos-soak harness: plan fuzzing, delta-debugging, reproducibility."""

import random

import pytest

from repro.baselines.luby import LubyMISProgram
from repro.graphs import path_graph
from repro.localmodel import (
    CORRUPT_KINDS,
    CorruptSpec,
    FaultPlan,
    chaos_soak,
    independent_set_validator,
    minimize_plan,
    random_fault_plan,
)
from repro.localmodel.programs import BFSLayerProgram


def bfs_suite_entry(n=6):
    g = path_graph(n)

    def validator(graph, outputs):
        return [
            f"node {v} got distance {d}, expected {v}"
            for v, d in outputs.items()
            if d != v
        ]

    return ("bfs", g, lambda v, nbrs: BFSLayerProgram(v, nbrs, 0, 16), validator)


def luby_suite_entry(n=6):
    g = path_graph(n)
    factory = lambda v, nbrs: LubyMISProgram(v, nbrs, random.Random(3_000 + v))
    return ("luby", g, factory, independent_set_validator)


class TestRandomFaultPlan:
    def test_deterministic_in_seed(self):
        nodes = list(range(8))
        assert random_fault_plan(7, nodes) == random_fault_plan(7, nodes)
        plans = {random_fault_plan(s, nodes).spec() for s in range(30)}
        assert len(plans) > 10  # seeds actually vary the draw

    def test_never_empty(self):
        nodes = list(range(5))
        assert not any(
            random_fault_plan(s, nodes).is_empty() for s in range(200)
        )

    def test_events_respect_the_horizon(self):
        nodes = list(range(5))
        for s in range(100):
            plan = random_fault_plan(s, nodes, max_round=9)
            for c in plan.corrupts:
                assert 0 <= c.round_no < 9
            for crash in plan.crashes:
                assert 0 <= crash.crash_round < 9
                assert crash.recover_round is not None

    def test_kinds_filter(self):
        nodes = list(range(5))
        kinds = {
            c.kind
            for s in range(200)
            for c in random_fault_plan(s, nodes, kinds=("mis",)).corrupts
        }
        assert kinds == {"mis"}

    def test_validation(self):
        with pytest.raises(ValueError):
            random_fault_plan(0, [])
        with pytest.raises(ValueError):
            random_fault_plan(0, [1], max_round=0)


class TestMinimizePlan:
    def test_strips_irrelevant_atoms(self):
        plan = FaultPlan(
            seed=3,
            drop=0.2,
            duplicate=0.1,
            bursts=((2, 3),),
            corrupts=(CorruptSpec(1, 4, "scramble"), CorruptSpec(2, 5, "mis")),
        )

        def fails(p):
            return any(c.node == 1 for c in p.corrupts)

        small = minimize_plan(plan, fails)
        assert small.corrupts == (CorruptSpec(1, 4, "scramble"),)
        assert small.drop == 0.0 and small.duplicate == 0.0
        assert small.bursts == ()
        assert fails(small)

    def test_halves_surviving_probabilities(self):
        plan = FaultPlan(seed=3, drop=0.8)
        small = minimize_plan(plan, lambda p: p.drop >= 0.1)
        assert 0.1 <= small.drop < 0.8

    def test_never_returns_empty_plan(self):
        plan = FaultPlan(seed=3, corrupts=(CorruptSpec(1, 4, "scramble"),))
        small = minimize_plan(plan, lambda p: True)
        assert not small.is_empty()


class TestChaosSoak:
    def test_validation(self):
        with pytest.raises(ValueError):
            chaos_soak([], trials=3)
        with pytest.raises(ValueError):
            chaos_soak([bfs_suite_entry()], trials=0)

    def test_replays_bit_for_bit(self):
        suite = [bfs_suite_entry(), luby_suite_entry()]
        first = chaos_soak(suite, trials=6, seed=5)
        second = chaos_soak(suite, trials=6, seed=5)
        assert [t.as_dict() for t in first.trials] == [
            t.as_dict() for t in second.trials
        ]
        assert first.summary() == second.summary()

    def test_trials_round_robin_the_suite(self):
        suite = [bfs_suite_entry(), luby_suite_entry()]
        report = chaos_soak(suite, trials=4, seed=1, minimize=False)
        assert [t.program for t in report.trials] == ["bfs", "luby"] * 2

    def test_failures_minimize_to_reproducing_specs(self):
        suite = [bfs_suite_entry()]
        report = chaos_soak(suite, trials=12, seed=0)
        failures = report.failures()
        assert failures  # drops/crashes on a path BFS do break things
        for t in failures:
            assert t.minimized is not None
            assert t.reproduces is True
            # the minimized spec is a valid grammar string
            assert not FaultPlan.parse(t.minimized).is_empty()

    def test_minimize_off_leaves_fields_none(self):
        report = chaos_soak([bfs_suite_entry()], trials=12, seed=0, minimize=False)
        assert all(t.minimized is None for t in report.trials)

    def test_executor_diagnostics_recorded(self):
        report = chaos_soak([bfs_suite_entry()], trials=1, seed=0, minimize=False)
        diag = report.executors["bfs"]
        # the probe plan is non-empty, so the batch path is blocked --
        # and the reason says so (the BatchExecutor diagnostic)
        assert diag["executed"] == "node"
        assert "fault plan is non-empty" in diag["fallback_reason"]

    def test_summary_aggregates(self):
        report = chaos_soak([bfs_suite_entry()], trials=8, seed=0, minimize=False)
        summary = report.summary()
        assert summary["trials"] == 8
        assert summary["failures"] == len(report.failures())
        assert sum(summary["by_kind"].values()) == summary["failures"]
        assert set(summary["by_program"]) <= {"bfs"}
