"""Unit tests for the payload meter (`repro.localmodel.meter`)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs import path_graph
from repro.localmodel import (
    EchoCountProgram,
    MessageMeter,
    SyncNetwork,
    payload_bytes,
    payload_words,
)


class TestPayloadWords:
    def test_scalars_are_one_word(self):
        for payload in (0, 3.5, "tag", True, None):
            assert payload_words(payload) == 1

    def test_containers_sum_their_leaves(self):
        assert payload_words([1, 2, 3]) == 3
        assert payload_words((1, (2, 3))) == 3
        assert payload_words({1, 2}) == 2

    def test_dict_charges_keys_and_values(self):
        assert payload_words({"a": 1, "b": [2, 3]}) == 5

    def test_empty_containers_still_cost_one_word(self):
        assert payload_words([]) == 1
        assert payload_words({}) == 1

    def test_dataclass_payload_measures_its_fields(self):
        @dataclass
        class Ball:
            center: int
            members: list

        # canonical form is {"Ball": {"center": ..., "members": [...]}}:
        # the class-name key, two field names, and three scalar leaves
        assert payload_words(Ball(7, [1, 2])) == 6

    def test_bytes_track_serialized_length(self):
        assert payload_bytes(7) == 1
        assert payload_bytes([10, 20]) == len("[10, 20]")


class TestMessageMeter:
    def run_metered(self, graph, factory):
        meter = MessageMeter()
        SyncNetwork(graph, factory, sinks=[meter]).run(max_rounds=100)
        return meter

    def test_echo_run_measures_single_word_messages(self):
        meter = self.run_metered(
            path_graph(5), lambda v, nbrs: EchoCountProgram(v, nbrs, 0)
        )
        assert meter.max_payload_words == 1
        assert meter.total_payload_words == sum(
            r["total_words"] for r in meter.per_round
        )

    def test_per_round_series_is_contiguous(self):
        meter = self.run_metered(
            path_graph(5), lambda v, nbrs: EchoCountProgram(v, nbrs, 0)
        )
        assert [r["round"] for r in meter.per_round] == list(
            range(len(meter.per_round))
        )

    def test_summary_reports_the_maxima(self):
        meter = self.run_metered(
            path_graph(5), lambda v, nbrs: EchoCountProgram(v, nbrs, 0)
        )
        summary = meter.summary()
        assert summary["max_payload_words"] == meter.max_payload_words
        assert summary["rounds"] == len(meter.per_round)

    def test_silent_rounds_measure_zero(self):
        meter = self.run_metered(
            path_graph(5), lambda v, nbrs: EchoCountProgram(v, nbrs, 0)
        )
        # the final wrap-up round delivers nothing
        assert meter.per_round[-1]["messages"] == 0
        assert meter.per_round[-1]["max_words"] == 0
