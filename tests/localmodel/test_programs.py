"""Stock message-passing programs: BFS, leader election, convergecast."""

import pytest

from repro.graphs import (
    binary_tree,
    caterpillar,
    cycle_graph,
    path_graph,
    random_chordal_graph,
    random_tree,
    star_graph,
)
from repro.localmodel.programs import bfs_layers, elect_leader, tree_count


class TestBFSLayers:
    def test_matches_centralized_bfs(self):
        g = random_chordal_graph(30, seed=3)
        root = g.vertices()[0]
        layers = bfs_layers(g, root)
        expected = g.bfs_distances(root)
        for v in g.vertices():
            assert layers[v] == expected.get(v)

    def test_unreachable_nodes_get_none(self):
        from repro.graphs import Graph

        g = Graph(edges=[(1, 2)])
        g.add_vertex(9)
        layers = bfs_layers(g, 1)
        assert layers[9] is None
        assert layers[2] == 1

    def test_budget_truncates_knowledge(self):
        g = path_graph(20)
        layers = bfs_layers(g, 0, budget=5)
        assert layers[4] == 4
        assert layers[19] is None  # beyond the round budget


class TestLeaderElection:
    def test_everyone_agrees_on_minimum(self):
        for graph in (cycle_graph(15), random_tree(40, seed=1), star_graph(9)):
            views = elect_leader(graph)
            minimum = min(graph.vertices())
            assert set(views.values()) == {minimum}

    def test_short_budget_leaves_disagreement(self):
        g = path_graph(30)
        views = elect_leader(g, budget=3)
        assert views[29] != 0  # node 29 cannot have heard from node 0


class TestTreeCount:
    def test_counts_various_trees(self):
        for tree in (path_graph(17), binary_tree(4), caterpillar(8, 2), star_graph(6)):
            root = tree.vertices()[0]
            assert tree_count(tree, root) == len(tree)

    def test_single_vertex(self):
        from repro.graphs import Graph

        assert tree_count(Graph(vertices=[5]), 5) == 1

    def test_any_root_works(self):
        tree = random_tree(25, seed=8)
        for root in list(tree.vertices())[:5]:
            assert tree_count(tree, root) == 25
