"""Distance-k selections: spacing guarantees and round costs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    is_distance_k_independent_set,
    is_maximal_distance_k_independent_set,
    path_graph,
    proper_interval_order,
    random_proper_interval_graph,
)
from repro.localmodel import (
    charged_rounds_distance_k,
    greedy_distance_k_selection,
    log_star,
    path_spaced_selection,
)


class TestLogStar:
    def test_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536) == 5


class TestPathSpacedSelection:
    def test_empty(self):
        assert path_spaced_selection([], 3) == ([], 0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            path_spaced_selection([1, 2], 0)

    def test_spacing_and_coverage(self):
        rng = random.Random(5)
        for n, k in [(50, 3), (200, 7), (400, 12), (1000, 25)]:
            ids = rng.sample(range(10**6), n)
            selected, rounds = path_spaced_selection(ids, k)
            pos = {v: i for i, v in enumerate(ids)}
            ps = sorted(pos[v] for v in selected)
            assert len(ps) >= 1
            # pairwise >= k
            assert all(b - a >= k for a, b in zip(ps, ps[1:]))
            # consecutive <= 4k, ends <= 4k
            assert all(b - a <= 4 * k for a, b in zip(ps, ps[1:]))
            assert ps[0] <= 4 * k
            assert n - 1 - ps[-1] <= 4 * k

    def test_round_cost_scales_like_k_log_star(self):
        ids = list(range(2000))
        _, r5 = path_spaced_selection(ids, 5)
        _, r40 = path_spaced_selection(ids, 40)
        # roughly linear in k (the log* factor is shared)
        assert r40 <= 20 * r5
        assert r40 > r5

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 150),
        k=st.integers(1, 20),
    )
    def test_property_spacing(self, seed, n, k):
        rng = random.Random(seed)
        ids = rng.sample(range(10**5), n)
        selected, _ = path_spaced_selection(ids, k)
        pos = {v: i for i, v in enumerate(ids)}
        ps = sorted(pos[v] for v in selected)
        assert len(ps) >= 1
        assert all(b - a >= k for a, b in zip(ps, ps[1:]))
        assert ps[0] <= 4 * k and (n - 1 - ps[-1]) <= 4 * k


class TestGreedySelection:
    def test_on_path_graph_is_maximal(self):
        g = path_graph(60)
        order = list(range(60))
        for k in (2, 3, 7):
            sel = greedy_distance_k_selection(g, order, k)
            assert is_maximal_distance_k_independent_set(g, sel, k)

    def test_on_proper_interval_graph(self):
        for seed in range(4):
            g = random_proper_interval_graph(40, seed=seed, length=0.08)
            for comp in g.connected_components():
                sub = g.induced_subgraph(comp)
                order = proper_interval_order(sub)
                sel = greedy_distance_k_selection(sub, order, 3)
                assert is_distance_k_independent_set(sub, sel, 3)
                assert is_maximal_distance_k_independent_set(sub, sel, 3)

    def test_k1_selects_everything(self):
        g = path_graph(5)
        assert greedy_distance_k_selection(g, list(range(5)), 1) == list(range(5))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            greedy_distance_k_selection(path_graph(3), [0, 1, 2], 0)


class TestChargedRounds:
    def test_zero_for_trivial(self):
        assert charged_rounds_distance_k(0, 5) == 0
        assert charged_rounds_distance_k(1, 5) == 0

    def test_monotone_in_k(self):
        assert charged_rounds_distance_k(1000, 10) < charged_rounds_distance_k(1000, 40)

    def test_log_star_factor(self):
        # doubling n barely changes the cost
        a = charged_rounds_distance_k(10**3, 10)
        b = charged_rounds_distance_k(10**6, 10)
        assert b <= a + 15
