"""Transient state corruption: grammar, determinism, between-round
semantics, and the byte-identity regression for empty corruption plans."""

import pytest

from repro.graphs import path_graph, star_graph
from repro.localmodel import (
    CORRUPT_KINDS,
    BatchExecutor,
    CorruptSpec,
    FaultPlan,
    FaultPlanError,
    RecordingSink,
    SyncNetwork,
    canonical_transcript,
    corrupt_program,
)
from repro.localmodel.faults import _PROTECTED_FIELDS
from repro.localmodel.programs import BFSLayerProgram


def bfs_factory(root=0, budget=12):
    return lambda v, nbrs: BFSLayerProgram(v, nbrs, root, budget)


class TestCorruptSpecGrammar:
    def test_round_trip_with_kind(self):
        text = "corrupt=4@6:color,corrupt=2@0:scramble,seed=7"
        plan = FaultPlan.parse(text)
        assert plan.corrupts == (
            CorruptSpec(4, 6, "color"),
            CorruptSpec(2, 0, "scramble"),
        )
        assert FaultPlan.parse(plan.spec()) == plan

    def test_kind_defaults_to_scramble(self):
        plan = FaultPlan.parse("corrupt=3@5")
        assert plan.corrupts == (CorruptSpec(3, 5, "scramble"),)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("corrupt=3@5:voltage")

    def test_negative_round_rejected(self):
        with pytest.raises(FaultPlanError):
            CorruptSpec(3, -1, "color")

    def test_unknown_corrupt_node_rejected_by_network(self):
        with pytest.raises(FaultPlanError, match="unknown node"):
            SyncNetwork(
                path_graph(3),
                bfs_factory(),
                faults=FaultPlan(corrupts=(CorruptSpec(99, 1),)),
            )


class TestCorruptProgramDeterminism:
    def _fresh(self):
        return BFSLayerProgram(1, [0, 2], 0, 12)

    def test_same_spec_same_mutation(self):
        spec = CorruptSpec(1, 4, "scramble")
        states = []
        for _ in range(2):
            program = self._fresh()
            program.output = 17
            corrupt_program(program, spec, seed=9)
            states.append(dict(program.__dict__))
        assert states[0] == states[1]

    def test_round_keys_the_stream(self):
        # the rng is keyed on (seed, round, node, kind): the same flip
        # scheduled at a different round draws a different value
        outputs = set()
        for round_no in range(8):
            program = self._fresh()
            program.output = 17
            corrupt_program(program, CorruptSpec(1, round_no, "color"), seed=9)
            outputs.add(program.output)
        assert len(outputs) > 1

    def test_mis_kind_negates_boolean(self):
        program = self._fresh()
        program.output = True
        assert corrupt_program(program, CorruptSpec(1, 2, "mis"), seed=0)
        assert program.output is False

    def test_protected_fields_survive_scramble(self):
        program = self._fresh()
        program.output = 3
        before = {f: getattr(program, f) for f in _PROTECTED_FIELDS}
        corrupt_program(program, CorruptSpec(1, 2, "scramble"), seed=5)
        after = {f: getattr(program, f) for f in _PROTECTED_FIELDS}
        assert before == after

    def test_ineffective_kind_reports_false(self):
        # a color flip needs an integer output; None is untouchable
        program = self._fresh()
        assert program.output is None
        assert not corrupt_program(program, CorruptSpec(1, 2, "color"), seed=0)


class TestCorruptionSemantics:
    def test_halted_node_keeps_corrupted_output(self):
        # BFS quiesces, then the corruption strikes the halted (and
        # non-repairable) node: the run still terminates, the node stays
        # done, and the corrupted output persists -- the "unsafe" story.
        g = path_graph(4)
        bare = SyncNetwork(g, bfs_factory())
        bare_out = bare.run()
        horizon = bare.stats.rounds + 2
        net = SyncNetwork(
            g,
            bfs_factory(),
            faults=FaultPlan(seed=3, corrupts=(CorruptSpec(2, horizon, "color"),)),
        )
        outputs = net.run(max_rounds=200)
        assert net.programs[2].done
        assert outputs[2] != bare_out[2]
        assert net.fault_summary()["corrupt_events"] == 1

    def test_pending_corruption_keeps_quiesced_network_ticking(self):
        g = path_graph(4)
        bare = SyncNetwork(g, bfs_factory())
        bare.run()
        late = bare.stats.rounds + 5
        net = SyncNetwork(
            g,
            bfs_factory(),
            faults=FaultPlan(seed=1, corrupts=(CorruptSpec(1, late, "scramble"),)),
        )
        net.run(max_rounds=200)
        assert net.stats.rounds > bare.stats.rounds
        assert net.fault_summary()["corrupt_events"] == 1

    def test_corruption_at_round_zero(self):
        # round 0 executes, sinks observe it, then the corruption lands:
        # round 1 is the first corrupted-state round
        g = path_graph(4)
        net = SyncNetwork(
            g,
            bfs_factory(),
            faults=FaultPlan(seed=2, corrupts=(CorruptSpec(0, 0, "scramble"),)),
        )
        net.run(max_rounds=200)
        assert net._fault_runtime.corruption_rounds == [0]

    def test_corruption_of_crashed_node_is_skipped(self):
        g = path_graph(4)
        net = SyncNetwork(
            g,
            bfs_factory(),
            faults=FaultPlan.parse("crash=2@0,corrupt=2@1:scramble,seed=4"),
        )
        net.run(max_rounds=200)
        assert net.fault_summary()["corrupt_events"] == 0

    def test_sinks_see_uncorrupted_round(self):
        # the corruption round's own trace shows the round as executed;
        # the flip is only visible from the next round on
        g = star_graph(4)
        sink = RecordingSink()
        net = SyncNetwork(
            g,
            bfs_factory(budget=4),
            sinks=[sink],
            faults=FaultPlan(seed=6, corrupts=(CorruptSpec(0, 0, "scramble"),)),
        )
        net.run(max_rounds=50)
        statuses = {m.status for r in sink.rounds for m in r.messages}
        assert statuses <= {"delivered"}  # corruption is not a message event


class TestEmptyCorruptionByteIdentity:
    """Acceptance: no corruption + checkpointing disabled == PR 9 baseline."""

    @pytest.mark.parametrize("scheduler", ["active", "dense"])
    @pytest.mark.parametrize("sealed", [False, True])
    def test_network_grid(self, scheduler, sealed):
        g = path_graph(7)
        runs = []
        for faults in (None, FaultPlan()):
            sink = RecordingSink()
            net = SyncNetwork(
                g,
                bfs_factory(),
                scheduler=scheduler,
                sealed=sealed,
                sinks=[sink],
                faults=faults,
                recovery="intact",
                checkpoint_every=None,
            )
            outputs = net.run()
            runs.append((outputs, net.stats, canonical_transcript(sink)))
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("mode", ["auto", "batch", "node"])
    def test_executor_grid(self, mode):
        g = path_graph(7)
        runs = []
        for faults in (None, FaultPlan()):
            ex = BatchExecutor(g, bfs_factory(), mode=mode, faults=faults)
            outputs = ex.run()
            runs.append((outputs, ex.stats, ex.executed))
        assert runs[0] == runs[1]
        # an empty plan is no blocker: auto still takes the batch path
        if mode == "auto":
            assert runs[1][2] == "batch"
