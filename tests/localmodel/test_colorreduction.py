"""Linial color reduction on paths: correctness, round counts, equivalence."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, path_graph
from repro.localmodel import (
    LINIAL_FIXPOINT,
    LinialPathProgram,
    SyncNetwork,
    linial_new_color,
    linial_parameters,
    log_star,
    three_color_path,
)


def proper_on_path(ids, colors):
    return all(
        colors[ids[i]] != colors[ids[i + 1]] for i in range(len(ids) - 1)
    )


class TestParameters:
    def test_fixpoint(self):
        for c in range(1, LINIAL_FIXPOINT + 1):
            assert linial_parameters(c) is None

    def test_progress_above_fixpoint(self):
        for c in (26, 100, 1000, 10**6, 2**64):
            params = linial_parameters(c)
            assert params is not None
            q, d = params
            assert q ** (d + 1) >= c
            assert q >= 2 * d + 1
            assert q * q < c

    def test_schedule_is_log_star_short(self):
        # From 2^64 IDs the palette reaches 25 within a handful of steps.
        from repro.localmodel.colorreduction import _reduction_schedule

        schedule = _reduction_schedule(2**64)
        assert 1 <= len(schedule) <= log_star(2**64) + 3


class TestNewColor:
    def test_properness_guarantee(self):
        q, d = 5, 2
        # Any triple of distinct colors (= polynomials) yields distinct pairs.
        rng = random.Random(7)
        for _ in range(200):
            a, b, c = rng.sample(range(q ** (d + 1)), 3)
            ca = linial_new_color(a, [b, c], q, d)
            cb = linial_new_color(b, [a, c], q, d)
            assert ca != cb
            assert 0 <= ca < q * q


class TestThreeColorPath:
    def test_empty_and_single(self):
        assert three_color_path([]) == ({}, 0)
        colors, _ = three_color_path([42])
        assert colors[42] in (1, 2, 3)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            three_color_path([1, 1, 2])

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            three_color_path([-1, 0])

    def test_proper_three_coloring(self):
        rng = random.Random(3)
        for n in (2, 3, 10, 57, 200):
            ids = rng.sample(range(10**6), n)
            colors, rounds = three_color_path(ids)
            assert proper_on_path(ids, colors)
            assert set(colors.values()) <= {1, 2, 3}

    def test_round_count_is_log_star_like(self):
        ids = list(range(1000))
        _, rounds = three_color_path(ids)
        # schedule length + 22 retirement rounds; far below any poly(n).
        assert rounds <= log_star(1000) + 3 + 22

    def test_rounds_grow_slowly_with_id_range(self):
        small = three_color_path(list(range(30)))[1]
        huge = three_color_path([i * 10**12 for i in range(1, 31)])[1]
        assert huge <= small + 4


class TestMessagePassingEquivalence:
    def test_program_matches_lockstep(self):
        rng = random.Random(11)
        raw_ids = rng.sample(range(10_000), 40)
        id_bound = max(raw_ids) + 1
        # Build a path graph whose vertex names are the IDs.
        g = Graph(vertices=raw_ids)
        for a, b in zip(raw_ids, raw_ids[1:]):
            g.add_edge(a, b)
        net = SyncNetwork(g, lambda v, nbrs: LinialPathProgram(v, nbrs, id_bound))
        out = net.run()
        assert proper_on_path(raw_ids, out)
        assert set(out.values()) <= {1, 2, 3}
        # Lock-step simulation agrees on the final coloring.
        lockstep, lockstep_rounds = three_color_path(raw_ids)
        assert out == lockstep
        # Message rounds = lockstep rounds + initial announcement + stop.
        assert net.stats.rounds <= lockstep_rounds + 2

    def test_program_rejects_high_degree(self):
        with pytest.raises(ValueError):
            LinialPathProgram(0, [1, 2, 3], id_bound=10)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 2**40), min_size=2, max_size=120, unique=True))
def test_three_coloring_always_proper(ids):
    colors, _ = three_color_path(ids)
    assert proper_on_path(ids, colors)
    assert set(colors.values()) <= {1, 2, 3}
