"""Delta gathering: equivalence with the full-flood reference.

The contract of :class:`DeltaGatherProgram` is strict: byte-identical
``KnownBall`` outputs *and* identical round counts against
:class:`BallGatherProgram`, across schedulers, sealed mode, and the
fault plans under which the two programs are provably equivalent
(reliable, explicitly empty, and duplicate-only -- duplicates are no-op
merges for both).  The ball contents themselves are pinned against a
direct BFS oracle, including disconnected graphs and isolated vertices.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    cycle_graph,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
    star_graph,
)
from repro.localmodel import FaultPlan, MessageMeter, gather_balls
from repro.localmodel.gather import GATHER_PROGRAMS, _reference_gather

SCHEDULERS = ("active", "dense")
# fault plans under which delta == reference holds (drop/delay diverge)
EQUIVALENT_FAULTS = {
    "none": None,
    "empty": FaultPlan(),
    "duplicate": FaultPlan(duplicate=0.4, seed=13),
}


def graphs_under_test():
    return [
        ("path9", path_graph(9)),
        ("cycle8", cycle_graph(8)),
        ("star5", star_graph(5)),
        ("paper", paper_example_graph()),
        ("chordal", random_chordal_graph(20, seed=5)),
        ("two-components", _two_components()),
        ("isolated", _with_isolated_vertex()),
    ]


def _two_components():
    return Graph(
        vertices=range(10),
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7), (7, 8), (8, 9)],
    )


def _with_isolated_vertex():
    g = Graph(vertices=range(7), edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    return g


def oracle_ball(graph, center, radius, states):
    """What the gather must output, computed by direct BFS."""
    dist = graph.bfs_distances(center, cutoff=radius)
    inside = set(dist)
    edges = {
        tuple(sorted(e))
        for e in graph.edges()
        if e[0] in inside or e[1] in inside
    }
    return {v: states.get(v) for v in inside}, edges


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("sealed", (False, True))
    @pytest.mark.parametrize("fault_name", sorted(EQUIVALENT_FAULTS))
    def test_delta_matches_reference(self, scheduler, sealed, fault_name):
        for name, g in graphs_under_test():
            states = {v: ("s", v) for v in g.vertices()}
            for radius in (0, 1, 2, 4):
                delta, d_rounds = gather_balls(
                    g,
                    radius,
                    states,
                    sealed=sealed,
                    scheduler=scheduler,
                    faults=EQUIVALENT_FAULTS[fault_name],
                )
                ref, r_rounds = _reference_gather(
                    g,
                    radius,
                    states,
                    sealed=sealed,
                    scheduler=scheduler,
                    faults=EQUIVALENT_FAULTS[fault_name],
                )
                label = f"{name} r={radius} {scheduler} sealed={sealed} {fault_name}"
                assert d_rounds == r_rounds, label
                assert set(delta) == set(ref), label
                for v in ref:
                    assert delta[v] == ref[v], f"{label} node {v}"
                    # byte-identical: same serialized rendering, not just
                    # equal-modulo-ordering
                    assert repr(sorted(delta[v].states.items())) == repr(
                        sorted(ref[v].states.items())
                    ), label
                    assert repr(sorted(delta[v].edges)) == repr(
                        sorted(ref[v].edges)
                    ), label

    @pytest.mark.parametrize("program", GATHER_PROGRAMS)
    def test_rounds_are_exactly_radius_plus_one(self, program):
        g = random_chordal_graph(16, seed=2)
        for radius in (0, 1, 3, 5):
            _, rounds = gather_balls(g, radius, program=program)
            assert rounds == radius + 1

    def test_unknown_program_rejected(self):
        with pytest.raises(ValueError, match="unknown gather program"):
            gather_balls(path_graph(3), 1, program="telepathy")

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            gather_balls(path_graph(3), -1)


class TestOracle:
    @pytest.mark.parametrize("program", GATHER_PROGRAMS)
    def test_against_bfs_oracle(self, program):
        for name, g in graphs_under_test():
            states = {v: ("s", v) for v in g.vertices()}
            for radius in (0, 1, 2, 3):
                balls, _ = gather_balls(g, radius, states, program=program)
                assert set(balls) == set(g.vertices()), name
                for v, ball in balls.items():
                    want_states, want_edges = oracle_ball(g, v, radius, states)
                    assert ball.center == v and ball.radius == radius
                    assert ball.states == want_states, f"{name} {v} r={radius}"
                    assert ball.edges == want_edges, f"{name} {v} r={radius}"

    @pytest.mark.parametrize("program", GATHER_PROGRAMS)
    def test_radius_zero_sees_self_and_incident_edges(self, program):
        g = _with_isolated_vertex()
        states = {v: v * 10 for v in g.vertices()}
        balls, rounds = gather_balls(g, 0, states, program=program)
        assert rounds == 1  # one round to run the cutoff check
        for v, ball in balls.items():
            assert ball.states == {v: v * 10}
            assert ball.edges == {
                tuple(sorted((v, u))) for u in g.neighbors(v)
            }

    @pytest.mark.parametrize("program", GATHER_PROGRAMS)
    def test_isolated_vertex_terminates_with_empty_ball(self, program):
        g = _with_isolated_vertex()
        for radius in (0, 1, 3):
            balls, rounds = gather_balls(g, radius, program=program)
            assert rounds == radius + 1
            lonely = balls[6]
            assert lonely.states == {6: None}
            assert lonely.edges == set()
            assert lonely.as_graph().vertices() == [6]

    @pytest.mark.parametrize("program", GATHER_PROGRAMS)
    def test_disconnected_ball_never_crosses_components(self, program):
        g = _two_components()
        balls, _ = gather_balls(g, 4, program=program)
        assert set(balls[0].states) == {0, 1, 2, 3, 4}
        assert set(balls[9].states) == {5, 6, 7, 8, 9}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 24),
    radius=st.integers(0, 5),
    drop_vertex=st.booleans(),
)
def test_known_ball_contract_property(seed, n, radius, drop_vertex):
    """Property: states == Gamma^r, edges == incident set, as_graph == G[ball].

    ``drop_vertex`` removes one vertex to produce disconnected instances
    (random chordal generators emit connected graphs).
    """
    g = random_chordal_graph(n, seed=seed)
    if drop_vertex and len(g) > 2:
        g = g.copy()
        g.remove_vertices([sorted(g.vertices())[len(g) // 2]])
    states = {v: ("st", v) for v in g.vertices()}
    balls, rounds = gather_balls(g, radius, states)
    assert rounds == radius + 1
    for v, ball in balls.items():
        want_states, want_edges = oracle_ball(g, v, radius, states)
        assert ball.states == want_states
        assert ball.edges == want_edges
        inside = set(want_states)
        got = ball.as_graph()
        assert set(got.vertices()) == inside
        assert {tuple(sorted(e)) for e in got.edges()} == {
            e for e in want_edges if e[0] in inside and e[1] in inside
        }


def test_delta_sends_fewer_messages_than_reference():
    """The point of the rewrite: strictly less wire traffic on real graphs."""
    g = path_graph(60)
    meter_d = MessageMeter()
    meter_r = MessageMeter()
    gather_balls(g, 8, sinks=[meter_d])
    _reference_gather(g, 8, sinks=[meter_r])
    assert (
        meter_d.total_payload_words < meter_r.total_payload_words
    ), "delta gathering must move strictly fewer payload words"
