"""SyncNetwork engine and ball gathering."""

import pytest

from repro.graphs import Graph, cycle_graph, path_graph, random_chordal_graph
from repro.localmodel import (
    BallGatherProgram,
    NodeProgram,
    SyncNetwork,
    gather_balls,
)


class EchoDegree(NodeProgram):
    """One-round program: learn neighbor count via messages."""

    def step(self, ctx):
        if ctx.round_number == 0:
            return self.broadcast("ping")
        self.output = len(ctx.inbox)
        self.done = True
        return {}


class Misbehaving(NodeProgram):
    def step(self, ctx):
        return {"not-a-neighbor": "boom"}


class NeverDone(NodeProgram):
    def step(self, ctx):
        return {}


class TestSyncNetwork:
    def test_degree_counting(self):
        g = path_graph(5)
        net = SyncNetwork(g, EchoDegree)
        out = net.run()
        assert out == {0: 1, 1: 2, 2: 2, 3: 2, 4: 1}
        assert net.stats.rounds == 2

    def test_message_stats(self):
        g = cycle_graph(4)
        net = SyncNetwork(g, EchoDegree)
        net.run()
        assert net.stats.messages_sent == 8
        assert net.stats.max_messages_per_round == 8

    def test_rejects_messages_to_non_neighbors(self):
        net = SyncNetwork(path_graph(3), Misbehaving)
        with pytest.raises(ValueError):
            net.run()

    def test_round_budget_enforced(self):
        net = SyncNetwork(path_graph(3), NeverDone)
        with pytest.raises(RuntimeError):
            net.run(max_rounds=5)


class TestBallGathering:
    def test_radius_zero(self):
        g = path_graph(4)
        balls, rounds = gather_balls(g, 0)
        assert rounds <= 1
        for v, ball in balls.items():
            assert set(ball.states) == {v}

    def test_matches_bfs_balls(self):
        g = random_chordal_graph(25, seed=4)
        for radius in (1, 2, 3):
            balls, rounds = gather_balls(g, radius)
            assert rounds == radius + 1  # radius exchanges + stop round
            for v, ball in balls.items():
                assert set(ball.states) == g.ball(v, radius)

    def test_edges_cover_interior(self):
        """All edges of the induced subgraph on the (radius-1)-ball are known."""
        g = random_chordal_graph(20, seed=9)
        radius = 3
        balls, _ = gather_balls(g, radius)
        for v, ball in balls.items():
            interior = g.ball(v, radius - 1)
            expected = set(g.induced_subgraph(interior).edges())
            assert expected <= ball.edges

    def test_states_delivered(self):
        g = path_graph(6)
        states = {v: f"s{v}" for v in g.vertices()}
        balls, _ = gather_balls(g, 2, states)
        assert balls[3].states == {1: "s1", 2: "s2", 3: "s3", 4: "s4", 5: "s5"}

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            gather_balls(path_graph(3), -1)

    def test_ball_as_graph(self):
        g = cycle_graph(8)
        balls, _ = gather_balls(g, 2)
        sub = balls[0].as_graph()
        assert set(sub.vertices()) == {6, 7, 0, 1, 2}
