"""BatchExecutor: whole-round kernels must be observationally per-node.

The equivalence contract is strict and threefold, for every kernel-backed
program family (delta gather, BFS layers, Linial path coloring):

* byte-identical outputs vs the per-node scheduler,
* identical ``RunStats`` (rounds, messages sent/delivered, per-round max),
* across the full scheduler{active,dense} x sealed{True,False} matrix,

plus the refusal rules: batch mode raises ``ValueError`` on a non-empty
fault plan (auto falls back to the per-node path instead), and the
``max_rounds`` budget stays exact on the kernel path.  Hypothesis drives
the matrix over generated path / interval / chordal families.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    path_graph,
    random_chordal_graph,
    star_graph,
    unit_interval_chain,
)
from repro.graphs.index import graph_index
from repro.localmodel import (
    EXECUTORS,
    BatchExecutor,
    FaultPlan,
    KernelIneligible,
    MetricsSink,
    NodeProgram,
    gather_balls,
)
from repro.localmodel.colorreduction import LinialPathProgram
from repro.localmodel.gather import DeltaGatherProgram, _reference_gather
from repro.localmodel.programs import BFSLayerProgram, bfs_layers

SCHEDULERS = ("active", "dense")


def stats_tuple(executor):
    s = executor.stats
    return (
        s.rounds,
        s.messages_sent,
        s.messages_delivered,
        s.max_messages_per_round,
    )


def run_both(graph, factory, max_rounds=10_000, **kwargs):
    """Run node and batch paths; assert outputs+stats agree; return them."""
    node = BatchExecutor(graph, factory, mode="node", **kwargs)
    out_node = node.run(max_rounds=max_rounds)
    batch = BatchExecutor(graph, factory, mode="batch", **kwargs)
    out_batch = batch.run(max_rounds=max_rounds)
    assert node.executed == "node"
    assert batch.executed == "batch"
    assert out_node == out_batch
    assert stats_tuple(node) == stats_tuple(batch)
    return out_node, stats_tuple(node)


def graphs_under_test():
    return [
        ("path9", path_graph(9)),
        ("star5", star_graph(5)),
        ("chordal", random_chordal_graph(20, seed=5)),
        ("interval", unit_interval_chain(18, seed=2)),
        ("two-components", _two_components()),
        ("isolated", _with_isolated_vertex()),
        ("single", Graph(vertices=[3], edges=[])),
        ("empty", Graph(vertices=[], edges=[])),
    ]


def _two_components():
    return Graph(
        vertices=range(10),
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7), (7, 8), (8, 9)],
    )


def _with_isolated_vertex():
    return Graph(vertices=range(7), edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])


def gather_factory(graph, radius, states=None):
    index = graph_index(graph)
    state_of = states or {}

    def factory(v, nbrs):
        return DeltaGatherProgram(v, nbrs, radius, state_of.get(v), index)

    return factory


# ---------------------------------------------------------------------------
# equivalence matrix, per kernel
# ---------------------------------------------------------------------------
class TestDeltaGatherKernelEquivalence:
    @pytest.mark.parametrize("name,graph", graphs_under_test())
    @pytest.mark.parametrize("radius", [0, 1, 3])
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("sealed", [False, True])
    def test_matrix(self, name, graph, radius, scheduler, sealed):
        states = {v: ("s", v) for v in graph.vertices()}
        factory = gather_factory(graph, radius, states)
        outputs, _ = run_both(
            graph,
            factory,
            max_rounds=radius + 1,
            sealed=sealed,
            scheduler=scheduler,
        )
        if len(graph):
            reference, _ = _reference_gather(graph, radius, states)
            assert outputs == reference

    def test_gather_balls_executor_parameter(self):
        g = random_chordal_graph(25, seed=9)
        balls_node, rounds_node = gather_balls(g, 3, executor="node")
        balls_batch, rounds_batch = gather_balls(g, 3, executor="batch")
        balls_auto, rounds_auto = gather_balls(g, 3, executor="auto")
        assert balls_node == balls_batch == balls_auto
        assert rounds_node == rounds_batch == rounds_auto

    def test_gather_balls_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            gather_balls(path_graph(4), 1, executor="warp")

    def test_reference_program_has_no_kernel_and_falls_back(self):
        g = path_graph(6)
        balls, rounds = gather_balls(g, 2, program="reference", executor="auto")
        assert rounds == 3
        with pytest.raises(ValueError, match="declares no batch kernel"):
            gather_balls(g, 2, program="reference", executor="batch")


class TestBFSLayerKernelEquivalence:
    @pytest.mark.parametrize("name,graph", graphs_under_test())
    @pytest.mark.parametrize("budget", [0, 1, 4, 12])
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("sealed", [False, True])
    def test_matrix(self, name, graph, budget, scheduler, sealed):
        verts = graph.vertices()
        if not verts:
            return
        root = verts[0]
        run_both(
            graph,
            lambda v, nbrs: BFSLayerProgram(v, nbrs, root, budget),
            max_rounds=budget + 2,
            sealed=sealed,
            scheduler=scheduler,
        )

    def test_bfs_layers_executor_parameter(self):
        g = random_chordal_graph(20, seed=3)
        root = g.vertices()[0]
        assert bfs_layers(g, root, executor="batch") == bfs_layers(
            g, root, executor="node"
        )

    def test_bfs_layers_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            bfs_layers(path_graph(4), 0, executor="warp")

    def test_multi_source_instances_compile(self):
        # two programs constructed with distance 0: a legitimate
        # multi-source flood, which the frontier kernel handles directly
        g = path_graph(11)
        roots = {0, 10}
        run_both(
            g,
            lambda v, nbrs: BFSLayerProgram(v, nbrs, v if v in roots else -1, 6),
            max_rounds=8,
        )

    def test_rootless_network_compiles(self):
        # no program holds distance 0: nobody ever announces
        g = path_graph(5)
        outputs, stats = run_both(
            g,
            lambda v, nbrs: BFSLayerProgram(v, nbrs, -1, 3),
            max_rounds=5,
        )
        assert all(d is None for d in outputs.values())
        assert stats[1] == 0  # no messages at all

    def test_negative_budget_falls_back_to_node_path(self):
        g = path_graph(4)
        ex = BatchExecutor(
            g, lambda v, nbrs: BFSLayerProgram(v, nbrs, 0, -1), mode="auto"
        )
        ex.run(max_rounds=1)
        assert ex.executed == "node"


class TestLinialPathKernelEquivalence:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 33])
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("sealed", [False, True])
    def test_matrix(self, n, scheduler, sealed):
        ids = [3 * i + 1 for i in range(n)]
        g = Graph(vertices=ids, edges=[(ids[i], ids[i + 1]) for i in range(n - 1)])
        id_bound = max(ids) + 1
        outputs, _ = run_both(
            g,
            lambda v, nbrs: LinialPathProgram(v, nbrs, id_bound),
            sealed=sealed,
            scheduler=scheduler,
        )
        for u, v in g.edges():
            assert outputs[u] != outputs[v]
        assert set(outputs.values()) <= {1, 2, 3}

    def test_mismatched_id_bounds_fall_back(self):
        # bounds far enough apart that the reduction schedules differ;
        # nearby bounds can legitimately share a schedule and compile
        g = path_graph(6)
        ex = BatchExecutor(
            g,
            lambda v, nbrs: LinialPathProgram(v, nbrs, 30 if v % 2 else 5000),
            mode="auto",
        )
        ex.run()
        assert ex.executed == "node"


# ---------------------------------------------------------------------------
# hypothesis sweep over generated families
# ---------------------------------------------------------------------------
class TestGeneratedFamilies:
    @settings(max_examples=25, deadline=None)
    @given(
        family=st.sampled_from(["path", "interval", "chordal"]),
        n=st.integers(1, 28),
        seed=st.integers(0, 1_000),
        radius=st.integers(0, 4),
        scheduler=st.sampled_from(SCHEDULERS),
        sealed=st.booleans(),
    )
    def test_gather_equivalence(self, family, n, seed, radius, scheduler, sealed):
        graph = _generate(family, n, seed)
        states = {v: v for v in graph.vertices()}
        run_both(
            graph,
            gather_factory(graph, radius, states),
            max_rounds=radius + 1,
            sealed=sealed,
            scheduler=scheduler,
        )

    @settings(max_examples=25, deadline=None)
    @given(
        family=st.sampled_from(["path", "interval", "chordal"]),
        n=st.integers(1, 28),
        seed=st.integers(0, 1_000),
        budget=st.integers(0, 8),
        scheduler=st.sampled_from(SCHEDULERS),
        sealed=st.booleans(),
    )
    def test_bfs_equivalence(self, family, n, seed, budget, scheduler, sealed):
        graph = _generate(family, n, seed)
        root = graph.vertices()[0]
        run_both(
            graph,
            lambda v, nbrs: BFSLayerProgram(v, nbrs, root, budget),
            max_rounds=budget + 2,
            sealed=sealed,
            scheduler=scheduler,
        )


def _generate(family, n, seed):
    if family == "path":
        return path_graph(n)
    if family == "interval":
        return unit_interval_chain(n, seed=seed)
    return random_chordal_graph(n, seed=seed)


# ---------------------------------------------------------------------------
# edge cases and refusal rules
# ---------------------------------------------------------------------------
class TestEdgeCases:
    def test_empty_graph_completes_in_zero_rounds(self):
        g = Graph(vertices=[], edges=[])
        ex = BatchExecutor(g, gather_factory(g, 2), mode="batch")
        assert ex.run(max_rounds=0) == {}
        assert ex.executed == "batch"
        assert ex.stats.rounds == 0

    def test_single_vertex(self):
        g = Graph(vertices=["v"], edges=[])
        outputs, stats = run_both(g, gather_factory(g, 3), max_rounds=4)
        assert outputs["v"].states == {"v": None}
        assert stats[1] == 0

    def test_radius_zero(self):
        g = path_graph(5)
        outputs, stats = run_both(g, gather_factory(g, 0), max_rounds=1)
        assert stats == (1, 0, 0, 0)
        assert outputs[2].states.keys() == {2}

    def test_max_rounds_exhaustion_mid_kernel(self):
        g = path_graph(8)
        ex = BatchExecutor(g, gather_factory(g, 5), mode="batch")
        with pytest.raises(RuntimeError, match="did not terminate within 3"):
            ex.run(max_rounds=3)

    def test_max_rounds_budget_is_exact(self):
        g = path_graph(8)
        ex = BatchExecutor(g, gather_factory(g, 5), mode="batch")
        ex.run(max_rounds=6)  # exactly radius + 1: must succeed
        assert ex.stats.rounds == 6

    def test_batch_refuses_nonempty_fault_plan(self):
        g = path_graph(6)
        plan = FaultPlan(drop=0.2, seed=7)
        ex = BatchExecutor(g, gather_factory(g, 2), faults=plan, mode="batch")
        with pytest.raises(ValueError, match="fault plan is non-empty"):
            ex.run()

    def test_auto_routes_fault_runs_to_node_path(self):
        g = path_graph(6)
        plan = FaultPlan(duplicate=0.4, seed=13)
        ex = BatchExecutor(g, gather_factory(g, 2), faults=plan, mode="auto")
        ex.run(max_rounds=3)
        assert ex.executed == "node"

    def test_empty_fault_plan_does_not_block_batch(self):
        g = path_graph(6)
        ex = BatchExecutor(g, gather_factory(g, 2), faults=FaultPlan(), mode="batch")
        ex.run(max_rounds=3)
        assert ex.executed == "batch"

    def test_batch_refuses_trace_sinks(self):
        g = path_graph(6)
        ex = BatchExecutor(
            g, gather_factory(g, 2), sinks=[MetricsSink()], mode="batch"
        )
        with pytest.raises(ValueError, match="trace sinks"):
            ex.run()

    def test_batch_refuses_inbox_order(self):
        g = path_graph(6)
        ex = BatchExecutor(g, gather_factory(g, 2), inbox_order=3, mode="batch")
        with pytest.raises(ValueError, match="inbox_order"):
            ex.run()

    def test_batch_refuses_kernel_less_programs(self):
        g = path_graph(4)
        ex = BatchExecutor(
            g, lambda v, nbrs: _KernelLessProgram(v, nbrs), mode="batch"
        )
        with pytest.raises(ValueError, match="declares no batch kernel"):
            ex.run()

    def test_auto_falls_back_for_kernel_less_programs(self):
        g = path_graph(4)
        ex = BatchExecutor(
            g, lambda v, nbrs: _KernelLessProgram(v, nbrs), mode="auto"
        )
        ex.run(max_rounds=2)
        assert ex.executed == "node"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown executor mode"):
            BatchExecutor(path_graph(3), gather_factory(path_graph(3), 1), mode="warp")

    def test_plan_reports_path_and_blockers(self):
        g = path_graph(5)
        ex = BatchExecutor(g, gather_factory(g, 1), mode="auto")
        path, blockers = ex.plan()
        assert path == "batch" and blockers == []
        ex2 = BatchExecutor(
            g, gather_factory(g, 1), faults=FaultPlan(drop=0.5, seed=1), mode="auto"
        )
        path2, blockers2 = ex2.plan()
        assert path2 == "node" and blockers2

    def test_mode_node_never_consults_kernels(self):
        g = path_graph(5)
        ex = BatchExecutor(g, gather_factory(g, 1), mode="node")
        assert ex.plan() == ("node", [])
        ex.run(max_rounds=2)
        assert ex.executed == "node"

    def test_executors_tuple(self):
        assert EXECUTORS == ("node", "batch", "auto")


class TestFallbackReason:
    """The diagnostic recording *why* a run left the batch path."""

    def test_none_before_any_run(self):
        g = path_graph(4)
        ex = BatchExecutor(g, gather_factory(g, 1), mode="auto")
        assert ex.fallback_reason is None

    def test_batch_path_leaves_reason_none(self):
        g = path_graph(4)
        ex = BatchExecutor(g, gather_factory(g, 1), mode="auto")
        ex.run(max_rounds=3)
        assert ex.executed == "batch"
        assert ex.fallback_reason is None

    def test_auto_fallback_records_joined_blockers(self):
        g = path_graph(4)
        ex = BatchExecutor(
            g,
            gather_factory(g, 1),
            faults=FaultPlan(drop=0.5, seed=1),
            sinks=[MetricsSink()],
            mode="auto",
        )
        ex.run(max_rounds=4)
        assert ex.executed == "node"
        assert "fault plan is non-empty" in ex.fallback_reason
        assert "trace sinks" in ex.fallback_reason

    def test_kernel_less_fallback_names_the_class(self):
        g = path_graph(4)
        ex = BatchExecutor(
            g, lambda v, nbrs: _KernelLessProgram(v, nbrs), mode="auto"
        )
        ex.run(max_rounds=2)
        assert "_KernelLessProgram declares no batch kernel" in ex.fallback_reason

    def test_forced_node_mode_is_not_a_fallback(self):
        g = path_graph(4)
        ex = BatchExecutor(g, gather_factory(g, 1), mode="node")
        ex.run(max_rounds=3)
        assert ex.executed == "node"
        assert ex.fallback_reason is None

    def test_kernel_ineligibility_message_recorded(self):
        # mismatched id bounds make the Linial kernel refuse at compile
        # time; auto mode records the KernelIneligible text verbatim
        g = path_graph(6)
        ex = BatchExecutor(
            g,
            lambda v, nbrs: LinialPathProgram(v, nbrs, 30 if v % 2 else 5000),
            mode="auto",
        )
        ex.run()
        assert ex.executed == "node"
        assert "disagree on the id bound" in ex.fallback_reason


class _KernelLessProgram(NodeProgram):
    """A trivial program with no batch kernel (fallback-path probe)."""

    always_active = True

    def step(self, ctx):
        self.done = True
        self.output = "ok"
        return {}
