"""Sealed execution: freeze semantics, sealed views, and the guarantee
that sealing is behavior-preserving for every conforming stock program."""

from __future__ import annotations

import pytest

from repro.baselines.coloring_baselines import distributed_delta_plus_one
from repro.baselines.luby import luby_mis
from repro.graphs import Graph, cycle_graph, path_graph, random_chordal_graph, random_tree
from repro.localmodel import (
    FrozenMessageDict,
    LinialPathProgram,
    NodeProgram,
    SealedContextError,
    SealedInbox,
    SealedNodeContext,
    SyncNetwork,
    freeze,
    gather_balls,
)
from repro.localmodel.programs import bfs_layers, elect_leader, tree_count
from repro.localmodel.trace import TracedNetwork


class TestFreeze:
    def test_freezes_nested_containers(self):
        frozen = freeze({"a": [1, {2}], "b": {"c": [3]}})
        assert isinstance(frozen, FrozenMessageDict)
        assert frozen["a"] == (1, frozenset({2}))
        assert isinstance(frozen["b"], FrozenMessageDict)
        assert frozen["b"]["c"] == (3,)

    def test_scalars_pass_through(self):
        for value in (None, 5, 2.5, "x", True):
            assert freeze(value) is value

    def test_frozen_dict_reads_like_a_dict(self):
        frozen = freeze({"x": 1, "y": 2})
        assert dict(frozen) == {"x": 1, "y": 2}
        assert frozen == {"x": 1, "y": 2}
        assert sorted(frozen) == ["x", "y"]
        assert len(frozen) == 2 and frozen.get("z") is None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.__setitem__("x", 9),
            lambda d: d.__delitem__("x"),
            lambda d: d.pop("x"),
            lambda d: d.clear(),
            lambda d: d.update(x=9),
            lambda d: d.setdefault("z", 1),
        ],
    )
    def test_frozen_dict_refuses_mutation(self, mutate):
        with pytest.raises(SealedContextError):
            mutate(freeze({"x": 1}))


class TestSealedInbox:
    def make(self):
        return SealedInbox(1, frozenset({0, 2}), {0: "hello"})

    def test_neighbor_access(self):
        inbox = self.make()
        assert inbox[0] == "hello"
        assert inbox.get(2) is None  # neighbor that sent nothing
        assert 0 in inbox and 2 not in inbox
        assert list(inbox) == [0] and dict(inbox.items()) == {0: "hello"}

    @pytest.mark.parametrize(
        "probe",
        [
            lambda i: i[7],
            lambda i: i.get(7),
            lambda i: 7 in i,
        ],
    )
    def test_non_neighbor_probe_raises(self, probe):
        with pytest.raises(SealedContextError, match="declared neighbors"):
            probe(self.make())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda i: i.__setitem__(0, "x"),
            lambda i: i.pop(0),
            lambda i: i.clear(),
            lambda i: i.update({0: "x"}),
        ],
    )
    def test_mutation_raises(self, mutate):
        with pytest.raises(SealedContextError, match="read-only"):
            mutate(self.make())


class TestSealedNodeContext:
    def test_attribute_reassignment_raises(self):
        ctx = SealedNodeContext(node=1, neighbors=[0], round_number=0, inbox={})
        with pytest.raises(SealedContextError, match="read-only"):
            ctx.round_number = 7
        assert ctx.round_number == 0


class NeighborListVandal(NodeProgram):
    """Empties ctx.neighbors; the engine must not let that corrupt state."""

    def step(self, ctx):
        ctx.neighbors.clear()
        self.done = True
        self.output = len(self.neighbors)
        return {}


class TestEngineAliasing:
    def test_ctx_neighbors_is_a_defensive_copy(self):
        # regression: ctx.neighbors used to alias program.neighbors, so a
        # buggy program could silently destroy its own neighbor list
        net = SyncNetwork(path_graph(3), NeighborListVandal)
        outputs = net.run()
        assert outputs == {0: 1, 1: 2, 2: 1}
        assert all(p.neighbors for p in net.programs.values())


@pytest.mark.parametrize("scheduler", ["active", "dense"])
class TestSealingIsBehaviorPreserving:
    """Acceptance: byte-identical outputs with sealing on vs. off.

    Parametrized over the scheduler so all four sealed x scheduler
    combinations run: sealing must stay behavior-preserving under both
    the active-set scheduler and the dense reference (the scheduler x
    scheduler axis is covered by ``test_equivalence.py``).
    """

    def test_bfs_layers(self, scheduler):
        g = random_chordal_graph(40, seed=3)
        assert bfs_layers(g, 0, scheduler=scheduler) == bfs_layers(
            g, 0, sealed=True, scheduler=scheduler
        )

    def test_leader_election(self, scheduler):
        g = cycle_graph(15)
        assert elect_leader(g, scheduler=scheduler) == elect_leader(
            g, sealed=True, scheduler=scheduler
        )

    def test_tree_count(self, scheduler):
        t = random_tree(30, seed=8)
        assert tree_count(t, 0, scheduler=scheduler) == tree_count(
            t, 0, sealed=True, scheduler=scheduler
        )

    def test_luby_mis(self, scheduler):
        g = random_chordal_graph(35, seed=11)
        assert luby_mis(g, seed=4, scheduler=scheduler) == luby_mis(
            g, seed=4, sealed=True, scheduler=scheduler
        )

    def test_delta_plus_one_coloring(self, scheduler):
        g = random_chordal_graph(30, seed=6)
        assert distributed_delta_plus_one(
            g, seed=9, scheduler=scheduler
        ) == distributed_delta_plus_one(g, seed=9, sealed=True, scheduler=scheduler)

    def test_cole_vishkin_linial(self, scheduler):
        ids = [17, 3, 29, 0, 12, 8, 41, 5]
        g = Graph(vertices=ids, edges=[(a, b) for a, b in zip(ids, ids[1:])])
        runs = {}
        for sealed in (False, True):
            net = SyncNetwork(
                g,
                lambda v, nbrs: LinialPathProgram(v, nbrs, 42),
                sealed=sealed,
                scheduler=scheduler,
            )
            runs[sealed] = (net.run(), net.stats.rounds, net.stats.messages_sent)
        assert runs[False] == runs[True]

    def test_ball_gathering(self, scheduler):
        g = random_chordal_graph(25, seed=2)
        plain, rounds_plain = gather_balls(g, 2, scheduler=scheduler)
        sealed, rounds_sealed = gather_balls(g, 2, sealed=True, scheduler=scheduler)
        assert rounds_plain == rounds_sealed
        for v in plain:
            assert plain[v].states == sealed[v].states
            assert plain[v].edges == sealed[v].edges

    def test_traced_network_seals(self, scheduler):
        from repro.localmodel.programs import LeaderElectionProgram

        g = path_graph(6)
        traced = TracedNetwork(
            g,
            lambda v, nbrs: LeaderElectionProgram(v, nbrs, len(g)),
            sealed=True,
            scheduler=scheduler,
        )
        outputs = traced.run()
        assert set(outputs.values()) == {0}
        assert traced.total_messages() > 0


class TestDeterminismRegressions:
    """Audit results for the stock programs: repeat runs are identical."""

    def test_leader_election_repeats_identically(self):
        g = random_chordal_graph(30, seed=5)
        assert elect_leader(g) == elect_leader(g)

    def test_luby_with_same_seed_repeats_identically(self):
        g = random_chordal_graph(30, seed=5)
        first_set, first_rounds = luby_mis(g, seed=3)
        second_set, second_rounds = luby_mis(g, seed=3)
        assert first_set == second_set and first_rounds == second_rounds

    def test_luby_is_seeded_per_node_not_global(self):
        # different master seeds must be able to produce different runs,
        # proving the randomness is routed through the injected rng
        g = path_graph(40)
        results = {frozenset(luby_mis(g, seed=s)[0]) for s in range(6)}
        assert len(results) > 1
