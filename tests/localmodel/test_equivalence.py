"""Equivalence suite: active-set scheduling is observationally invisible.

The acceptance bar for the scheduler rewrite: on every on-simulator
program (BFS, leader election, convergecast, ball gathering, Linial /
Cole-Vishkin, Luby's MIS, randomized (Delta+1)-coloring), the active-set
scheduler must produce **identical outputs, identical RunStats, and
identical traces** to the dense reference -- sealed and unsealed.  The
only permitted difference is work: how many node steps were spent.

Also hosts the regression tests for the two trace bugs fixed alongside
the rewrite: lexicographic (``str``) ordering of integer vertex ids in
traces, and ``RoundTrace.round_number`` drifting from the network's own
round counter when a caller interleaves direct ``step_round()`` calls.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.coloring_baselines import RandomizedColoringProgram
from repro.baselines.luby import LubyMISProgram
from repro.graphs import Graph, path_graph, random_chordal_graph, random_tree, star_graph
from repro.localmodel import (
    BFSLayerProgram,
    EchoCountProgram,
    LeaderElectionProgram,
    LinialPathProgram,
    NodeProgram,
    RecordingSink,
    SyncNetwork,
)
from repro.localmodel.gather import BallGatherProgram
from repro.localmodel.trace import TracedNetwork


# ---------------------------------------------------------------------------
# the program zoo: every on-simulator program, with a fresh factory per run
# (factories capture seeded RNGs / mutable defaults, so each network build
# must get its own)
# ---------------------------------------------------------------------------

def _bfs_case():
    g = random_chordal_graph(40, seed=3)
    return g, lambda v, nbrs: BFSLayerProgram(v, nbrs, root=0, budget=len(g) + 1)


def _leader_case():
    g = random_tree(30, seed=8)
    return g, lambda v, nbrs: LeaderElectionProgram(v, nbrs, budget=len(g) + 1)


def _echo_case():
    g = random_tree(30, seed=5)
    return g, lambda v, nbrs: EchoCountProgram(v, nbrs, root=0)


def _gather_case():
    g = random_chordal_graph(25, seed=2)
    return g, lambda v, nbrs: BallGatherProgram(v, nbrs, radius=2, state=None)


def _linial_case():
    ids = [17, 3, 29, 0, 12, 8, 41, 5, 23, 36, 2, 19]
    g = Graph(vertices=ids, edges=list(zip(ids, ids[1:])))
    return g, lambda v, nbrs: LinialPathProgram(v, nbrs, id_bound=42)


def _luby_case():
    g = random_chordal_graph(35, seed=11)
    master = random.Random(4)
    seeds = {v: master.randrange(2 ** 62) for v in g.vertices()}
    return g, lambda v, nbrs: LubyMISProgram(v, nbrs, random.Random(seeds[v]))


def _coloring_case():
    g = random_chordal_graph(30, seed=6)
    palette = g.max_degree() + 1
    master = random.Random(9)
    seeds = {v: master.randrange(2 ** 62) for v in g.vertices()}
    return g, lambda v, nbrs: RandomizedColoringProgram(
        v, nbrs, palette, random.Random(seeds[v])
    )


CASES = {
    "bfs": _bfs_case,
    "leader": _leader_case,
    "echo": _echo_case,
    "gather": _gather_case,
    "linial": _linial_case,
    "luby": _luby_case,
    "coloring": _coloring_case,
}


def _run(case, scheduler, sealed):
    graph, factory = CASES[case]()
    traced = TracedNetwork(graph, factory, sealed=sealed, scheduler=scheduler)
    outputs = traced.run()
    stats = traced.network.stats
    return {
        "outputs": outputs,
        "stats": (stats.rounds, stats.messages_sent, stats.max_messages_per_round),
        # active_count is the one field *allowed* to differ (it is the
        # scheduler's work measure); everything else must be identical
        "trace": [(r.round_number, r.messages, r.completed) for r in traced.rounds],
        "steps": sum(r.active_count for r in traced.rounds),
    }


class TestActiveEqualsDense:
    """outputs == outputs, RunStats == RunStats, trace == trace."""

    @pytest.mark.parametrize("sealed", [False, True], ids=["unsealed", "sealed"])
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_equivalent(self, case, sealed):
        dense = _run(case, "dense", sealed)
        active = _run(case, "active", sealed)
        assert active["outputs"] == dense["outputs"]
        assert active["stats"] == dense["stats"]
        assert active["trace"] == dense["trace"]
        # the scheduler may only ever *save* work, never add it
        assert active["steps"] <= dense["steps"]

    def test_event_driven_program_actually_saves_steps(self):
        # convergecast is the purely event-driven case: deep nodes idle
        # while the leaves' reports climb, so the active set must be
        # strictly smaller than "everyone not yet done"
        dense = _run("echo", "dense", False)
        active = _run("echo", "active", False)
        assert active["steps"] < dense["steps"]
        assert active["outputs"] == dense["outputs"]


class TestSchedulerValidation:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            SyncNetwork(path_graph(3), lambda v, n: NodeProgram(v, n),
                        scheduler="lazy")


# ---------------------------------------------------------------------------
# active-set semantics
# ---------------------------------------------------------------------------

class SilentCountdown(NodeProgram):
    """Acts on silence without declaring it -- the L6 starvation shape."""

    def step(self, ctx):
        if ctx.round_number >= 3:
            self.done = True
            self.output = ctx.round_number
        return {}


class WakingCountdown(SilentCountdown):
    """Same countdown, but conforming: requests its own wakeups."""

    def step(self, ctx):
        result = super().step(ctx)
        if not self.done:
            self.wake_next_round()
        return result


class AlwaysActiveCountdown(SilentCountdown):
    always_active = True


class TestActiveSetSemantics:
    def test_silent_actor_starves_loudly(self):
        net = SyncNetwork(path_graph(4), SilentCountdown)
        with pytest.raises(RuntimeError, match="starv"):
            net.run()

    def test_wake_next_round_keeps_a_quiet_node_scheduled(self):
        net = SyncNetwork(path_graph(4), WakingCountdown)
        assert set(net.run().values()) == {3}

    def test_always_active_keeps_a_quiet_node_scheduled(self):
        net = SyncNetwork(path_graph(4), AlwaysActiveCountdown)
        assert set(net.run().values()) == {3}

    def test_dense_reference_never_starves(self):
        net = SyncNetwork(path_graph(4), SilentCountdown, scheduler="dense")
        assert set(net.run().values()) == {3}

    def test_isolated_vertex_gathers_its_empty_ball(self):
        # the always_active declaration on BallGatherProgram exists for
        # exactly this: an isolated vertex never receives, yet its radius
        # countdown must still run to completion
        g = Graph(vertices=[7], edges=[])
        net = SyncNetwork(g, lambda v, nbrs: BallGatherProgram(v, nbrs, 2, "s"))
        outputs = net.run()
        assert outputs[7].states == {7: "s"}

    def test_inboxes_allocated_only_for_receivers(self):
        # star: after round 0 every leaf messaged the hub and vice versa;
        # once leaves finish, pending inboxes must not accumulate entries
        # for non-receivers
        net = SyncNetwork(
            star_graph(5),
            lambda v, nbrs: BFSLayerProgram(v, nbrs, root=0, budget=7),
        )
        net.step_round()
        assert set(net._pending) <= set(net.graph.vertices())
        for receiver, inbox in net._pending.items():
            assert inbox, f"empty inbox allocated for {receiver!r}"

    def test_run_fast_exits_when_all_programs_finish(self):
        class OneShot(NodeProgram):
            def step(self, ctx):
                self.done = True
                self.output = ctx.node
                return {}

        net = SyncNetwork(path_graph(6), OneShot)
        net.run(max_rounds=10_000)
        assert net.stats.rounds == 1  # did not spin to the budget


# ---------------------------------------------------------------------------
# regression: trace ordering on graphs with >= 11 vertices
# ---------------------------------------------------------------------------

class Chatter(NodeProgram):
    """Round 0: broadcast and finish -- every node sends and completes."""

    def step(self, ctx):
        self.done = True
        self.output = ctx.node
        return self.broadcast(ctx.node)


class TestTraceOrderingRegression:
    """Traces used to sort with key=str: 0, 1, 10, 11, 2, ... for int ids."""

    def test_messages_sort_numerically_past_ten(self):
        g = path_graph(12)  # vertices 0..11: two-digit ids present
        traced = TracedNetwork(g, Chatter)
        traced.run()
        senders = [m.sender for m in traced.rounds[0].messages]
        assert senders == sorted(senders)  # numeric, not lexicographic
        # the lexicographic bug put 10 and 11 between 1 and 2
        assert senders.index(2) < senders.index(10) < senders.index(11)

    def test_completed_sort_numerically_past_ten(self):
        g = path_graph(12)
        traced = TracedNetwork(g, Chatter)
        traced.run()
        assert traced.rounds[0].completed == list(range(12))

    def test_vertex_key_orders_naturally(self):
        from repro.localmodel import vertex_key

        # ints numerically; mixed types do not raise; bools are not ints
        assert sorted([11, 2, 10, 1, 0], key=vertex_key) == [0, 1, 2, 10, 11]
        assert sorted([1, "a", 10, "b", 2], key=vertex_key) == [1, 2, 10, "a", "b"]
        assert vertex_key(True)[0] == 1  # grouped with non-numerics, not as 1


# ---------------------------------------------------------------------------
# regression: RoundTrace.round_number vs. the network's round counter
# ---------------------------------------------------------------------------

class TestRoundNumberAgreesWithNetwork:
    """round_number used to be len(recorded rounds), which drifted from
    network.stats.rounds whenever a caller stepped the engine directly."""

    def _traced(self):
        g = path_graph(5)
        return TracedNetwork(
            g, lambda v, nbrs: BFSLayerProgram(v, nbrs, root=0, budget=6)
        )

    def test_interleaved_direct_steps_stay_in_sync(self):
        traced = self._traced()
        traced.network.step_round()  # direct engine call, bypassing wrapper
        traced.step_round()
        traced.network.step_round()
        traced.step_round()
        assert [r.round_number for r in traced.rounds] == [0, 1, 2, 3]
        assert traced.rounds[-1].round_number == traced.network.stats.rounds - 1

    def test_full_run_round_numbers_are_the_networks(self):
        traced = self._traced()
        traced.run()
        assert [r.round_number for r in traced.rounds] == list(
            range(traced.network.stats.rounds)
        )

    def test_recording_sink_rejects_drift(self):
        sink = RecordingSink()
        sink.on_round(0, [], [], 1)
        with pytest.raises(AssertionError, match="trace drift"):
            sink.on_round(2, [], [], 1)  # a skipped notification
