"""The self-stabilizing repair layer: policies, the envelope, and
measured recovery under state corruption."""

import random

import pytest

from repro.baselines.coloring_baselines import RandomizedColoringProgram
from repro.baselines.luby import LubyMISProgram
from repro.graphs import path_graph, random_chordal_graph
from repro.localmodel import (
    ColoringRepair,
    CorruptSpec,
    FaultPlan,
    MISRepair,
    RepairableProgram,
    SyncNetwork,
    maximal_independent_set_validator,
    proper_coloring_validator,
    repairable,
    stabilization_run,
    vertex_key,
)


def coloring_inner(palette_size):
    return lambda v, nbrs: RandomizedColoringProgram(
        v, nbrs, palette_size, random.Random(1_000 + int(v))
    )


def mis_inner():
    return lambda v, nbrs: LubyMISProgram(v, nbrs, random.Random(2_000 + int(v)))


class TestColoringRepairPolicy:
    def setup_method(self):
        self.policy = ColoringRepair(palette_size=4, first_color=1)

    def test_palette_size_validated(self):
        with pytest.raises(ValueError):
            ColoringRepair(0)

    def test_check_flags_conflict_and_out_of_palette(self):
        nbrs = {10: 2, 11: 3}
        assert self.policy.check(5, 2, nbrs)        # shared with 10
        assert self.policy.check(5, 0, nbrs)        # below first_color
        assert self.policy.check(5, 5, nbrs)        # past the palette
        assert self.policy.check(5, None, nbrs)     # missing
        assert self.policy.check(5, True, nbrs)     # bool is not a color
        assert not self.policy.check(5, 1, nbrs)

    def test_yield_only_to_larger_key_partners(self):
        assert self.policy.should_yield(5, 2, {10: 2})       # 10 moves first
        assert not self.policy.should_yield(10, 2, {5: 2})   # 10 is largest
        # a palette violation is the node's own to fix, never yielded
        assert not self.policy.should_yield(5, 0, {10: 2})

    def test_repair_picks_smallest_free_color(self):
        assert self.policy.repair(5, 2, {10: 2, 11: 1}) == 3
        # the current color is excluded even when no neighbor holds it
        assert self.policy.repair(5, 1, {10: 3}) == 2


class TestMISRepairPolicy:
    def setup_method(self):
        self.policy = MISRepair()

    def test_check_flags_clash_and_uncovered(self):
        assert self.policy.check(5, True, {10: True})    # adjacent members
        assert self.policy.check(5, False, {10: False})  # uncovered
        assert self.policy.check(5, None, {10: True})    # missing flag
        assert not self.policy.check(5, True, {10: False})
        assert not self.policy.check(5, False, {10: True})

    def test_member_yields_to_larger_key_member(self):
        assert self.policy.should_yield(5, True, {10: True})
        assert not self.policy.should_yield(10, True, {5: True})
        assert not self.policy.should_yield(5, False, {10: False})

    def test_repair_reelects_locally(self):
        assert self.policy.repair(5, False, {10: False}) is True
        assert self.policy.repair(5, True, {10: True}) is False


class TestEnvelopeConstruction:
    def test_parameter_validation(self):
        factory = mis_inner()
        with pytest.raises(ValueError):
            RepairableProgram(0, [1], factory, MISRepair(), quiet_rounds=0)
        with pytest.raises(ValueError):
            RepairableProgram(0, [1], factory, MISRepair(), repair_budget=-1)
        with pytest.raises(ValueError):
            RepairableProgram(0, [1], factory, MISRepair(), patience=0)

    def test_marker_attributes(self):
        program = RepairableProgram(0, [1], mis_inner(), MISRepair())
        assert program.repairable is True
        assert program.always_active is True


class TestFaultFreeEquivalence:
    def test_wrapped_coloring_matches_unwrapped_outputs(self):
        g = random_chordal_graph(12, seed=5)
        palette = g.max_degree() + 1
        plain = SyncNetwork(g, coloring_inner(palette))
        plain_out = plain.run(max_rounds=2_000)
        wrapped = SyncNetwork(
            g,
            repairable(coloring_inner(palette), lambda: ColoringRepair(palette, 1)),
        )
        wrapped_out = wrapped.run(max_rounds=2_000)
        assert wrapped_out == plain_out
        assert proper_coloring_validator(g, wrapped_out) == []

    def test_wrapped_mis_matches_unwrapped_outputs(self):
        g = path_graph(8)
        plain = SyncNetwork(g, mis_inner())
        plain_out = plain.run(max_rounds=2_000)
        wrapped = SyncNetwork(g, repairable(mis_inner(), MISRepair))
        wrapped_out = wrapped.run(max_rounds=2_000)
        assert wrapped_out == plain_out
        assert maximal_independent_set_validator(g, wrapped_out) == []


def _mis_flip_plan(g, factory, slack=2, seed=1):
    """A corruption flipping the largest-key MIS member after quiescence."""
    base = SyncNetwork(g, factory)
    outputs = base.run(max_rounds=2_000)
    victim = max((v for v, m in outputs.items() if m is True), key=vertex_key)
    corrupt_round = base.stats.rounds + slack
    return FaultPlan(seed=seed, corrupts=(CorruptSpec(victim, corrupt_round, "mis"),))


class TestStabilizationRun:
    def test_empty_plan_is_self_healing_and_matches_baseline(self):
        g = path_graph(6)
        report = stabilization_run(
            g, mis_inner(), maximal_independent_set_validator, FaultPlan()
        )
        assert report.classification == "self-healing"
        assert report.matches_baseline
        assert report.corruption_round is None
        assert report.repairs == 0

    def test_unrepaired_mis_flip_is_unsafe(self):
        g = path_graph(6)
        plan = _mis_flip_plan(g, mis_inner())
        report = stabilization_run(
            g, mis_inner(), maximal_independent_set_validator, plan
        )
        assert report.classification == "unsafe"
        assert report.problems

    def test_repaired_mis_flip_self_heals_in_constant_rounds(self):
        g = path_graph(6)
        factory = repairable(mis_inner(), MISRepair)
        plan = _mis_flip_plan(g, factory)
        report = stabilization_run(
            g, factory, maximal_independent_set_validator, plan
        )
        assert report.classification == "self-healing"
        assert report.recovered
        assert report.detection_latency == 1
        assert report.recovery_rounds == 1
        assert report.repairs >= 1
        assert report.injected["corrupt_events"] == 1

    def test_zero_budget_gives_up_loudly(self):
        g = path_graph(6)
        factory = repairable(mis_inner(), MISRepair, repair_budget=0)
        plan = _mis_flip_plan(g, factory)
        report = stabilization_run(
            g, factory, maximal_independent_set_validator, plan
        )
        assert report.classification == "unsafe"
        assert report.repairs == 0
        assert report.complete  # halted, not spinning

    def test_corruption_before_any_output_is_harmless(self):
        # a "mis" flip at round 0 finds no boolean output to negate:
        # no corrupt event fires and the run matches the baseline
        g = path_graph(6)
        factory = repairable(mis_inner(), MISRepair)
        base = SyncNetwork(g, factory)
        base.run(max_rounds=2_000)
        victim = max(g.vertices(), key=vertex_key)
        plan = FaultPlan(seed=1, corrupts=(CorruptSpec(victim, 0, "mis"),))
        report = stabilization_run(
            g, factory, maximal_independent_set_validator, plan
        )
        assert report.classification == "self-healing"
        assert report.injected["corrupt_events"] == 0
        assert report.matches_baseline

    def test_crash_during_own_repair_still_converges(self):
        # the victim is corrupted, wakes to repair, crashes mid-repair,
        # recovers with state intact, and finishes the job
        g = path_graph(6)
        factory = repairable(mis_inner(), MISRepair)
        plan = _mis_flip_plan(g, factory)
        corrupt_round = plan.corrupts[0].round_no
        victim = plan.corrupts[0].node
        import dataclasses

        from repro.localmodel import CrashSpec

        plan = dataclasses.replace(
            plan,
            crashes=(
                CrashSpec(victim, corrupt_round + 1, corrupt_round + 3),
            ),
        )
        report = stabilization_run(
            g, factory, maximal_independent_set_validator, plan
        )
        assert report.classification == "self-healing"
        assert report.valid
        assert report.injected["crash_events"] == 1
        assert report.injected["recover_events"] == 1

    def test_corruption_of_halted_repairable_node_reopens_it(self):
        g = path_graph(6)
        factory = repairable(mis_inner(), MISRepair)
        plan = _mis_flip_plan(g, factory)
        net = SyncNetwork(g, factory, faults=plan)
        outputs = net.run(max_rounds=2_000)
        victim = plan.corrupts[0].node
        # the victim was re-activated, repaired, and halted again
        assert net.programs[victim].done
        assert net.programs[victim].repairs >= 1
        assert maximal_independent_set_validator(g, outputs) == []
