"""Round ledgers and per-node completion clocks."""

import pytest

from repro.localmodel import NodeClocks, RoundLedger


class TestRoundLedger:
    def test_charges_accumulate(self):
        ledger = RoundLedger()
        ledger.charge("collect", 10)
        ledger.charge("color", 5)
        ledger.charge("collect", 10)
        assert ledger.total() == 25
        assert ledger.by_label() == {"collect": 20, "color": 5}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().charge("x", -1)

    def test_merge_with_prefix(self):
        a, b = RoundLedger(), RoundLedger()
        b.charge("phase", 7)
        a.merge(b, prefix="layer1/")
        assert a.by_label() == {"layer1/phase": 7}

    def test_empty_total(self):
        assert RoundLedger().total() == 0


class TestNodeClocks:
    def test_set_and_query(self):
        clocks = NodeClocks()
        clocks.set_at("a", 5)
        clocks.set_at("b", 9)
        assert clocks.at("a") == 5
        assert "a" in clocks
        assert "z" not in clocks
        assert clocks.ready(["a", "b"]) == 9
        assert clocks.makespan() == 9

    def test_clock_may_stay_or_advance(self):
        clocks = NodeClocks()
        clocks.set_at("a", 5)
        clocks.set_at("a", 5)
        clocks.set_at("a", 8)
        assert clocks.at("a") == 8

    def test_clock_cannot_move_backwards(self):
        clocks = NodeClocks()
        clocks.set_at("a", 5)
        with pytest.raises(ValueError):
            clocks.set_at("a", 4)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NodeClocks().set_at("a", -1)

    def test_ready_of_nothing(self):
        assert NodeClocks().ready([]) == 0
        assert NodeClocks().makespan() == 0

    def test_as_dict_is_copy(self):
        clocks = NodeClocks()
        clocks.set_at("a", 1)
        d = clocks.as_dict()
        d["a"] = 99
        assert clocks.at("a") == 1
