"""Equivalence suite: kernels vs legacy references vs the networkx oracle.

The public chordal API dispatches to the integer kernels of
``repro.graphs.kernels``; the promise is *byte-identical* outputs with the
label-space ``_reference_*`` paths.  This suite pins that promise over
every generator family, adversarial non-chordal inputs, shuffled orders,
and the paper's 23-node example, with networkx as the independent oracle
for chordality, cliques, and chromatic numbers.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring.greedy import _reference_peo_greedy_coloring, peo_greedy_coloring
from repro.coloring.prune import diameter_rule, peel_chordal_graph, peeling_layers
from repro.cliquetree.wcig import _reference_wcig_edges_among, wcig_edges_among
from repro.graphs import (
    Graph,
    NotChordalError,
    cycle_graph,
    graph_index,
    is_chordal,
    lex_bfs,
    maximal_cliques,
    maximum_cardinality_search,
    paper_example_cliques,
    paper_example_graph,
    path_graph,
    perfect_elimination_ordering,
    random_chordal_graph,
    random_interval_graph,
    random_k_tree,
    random_split_graph,
    simplicial_vertices,
    unit_interval_chain,
)
from repro.graphs import chordal as chordal_mod
from repro.graphs import kernels
from repro.graphs.chordal import check_peo
from tests.conftest import to_networkx

#: (family name, constructor) -> a diverse pool of graphs, chordal and not.
FAMILIES = [
    ("ktree", lambda seed: random_k_tree(40, 3, seed=seed)),
    ("chordal", lambda seed: random_chordal_graph(35, seed=seed)),
    ("interval", lambda seed: random_interval_graph(30, seed=seed)),
    ("split", lambda seed: random_split_graph(25, seed=seed)),
    ("uic", lambda seed: unit_interval_chain(30 + seed, 4)),
    ("path", lambda seed: path_graph(20 + seed)),
    ("cycle", lambda seed: cycle_graph(8 + seed)),  # not chordal for n >= 4
    ("gnm", lambda seed: _gnm(25, 60, seed)),  # adversarial, rarely chordal
]
SEEDS = range(4)


def _gnm(n, m, seed):
    g = Graph(vertices=range(n))
    rng = random.Random(seed)
    for _ in range(m):
        u, v = rng.sample(range(n), 2)
        g.add_edge(u, v)
    return g


def pool():
    yield "empty", Graph()
    yield "singleton", Graph(vertices=[7])
    yield "paper", paper_example_graph()
    for name, make in FAMILIES:
        for seed in SEEDS:
            yield f"{name}-{seed}", make(seed)


POOL = list(pool())
POOL_IDS = [name for name, _ in POOL]
POOL_GRAPHS = [g for _, g in POOL]


@pytest.mark.parametrize("g", POOL_GRAPHS, ids=POOL_IDS)
class TestOrderEquivalence:
    def test_lexbfs_matches_reference(self, g):
        assert lex_bfs(g) == chordal_mod._reference_lex_bfs(g)

    def test_lexbfs_start_matches_reference(self, g):
        for v in g.vertices()[:3]:
            assert lex_bfs(g, start=v) == chordal_mod._reference_lex_bfs(g, start=v)

    def test_lbfs_plus_matches_reference(self, g):
        first = lex_bfs(g)
        assert lex_bfs(g, plus=first) == chordal_mod._reference_lex_bfs(g, plus=first)

    def test_mcs_matches_reference(self, g):
        assert (
            maximum_cardinality_search(g)
            == chordal_mod._reference_maximum_cardinality_search(g)
        )

    def test_check_peo_matches_reference_on_lexbfs_order(self, g):
        order = list(reversed(lex_bfs(g)))
        assert check_peo(g, order) == chordal_mod._reference_check_peo(g, order)

    def test_check_peo_matches_reference_on_shuffled_orders(self, g):
        for seed in range(3):
            order = g.vertices()
            random.Random(seed).shuffle(order)
            assert check_peo(g, order) == chordal_mod._reference_check_peo(g, order)

    def test_simplicial_matches_reference(self, g):
        assert simplicial_vertices(g) == chordal_mod._reference_simplicial_vertices(g)

    def test_chordality_matches_networkx(self, g):
        nxg = to_networkx(g)
        expected = len(g) == 0 or nx.is_chordal(nxg)
        assert is_chordal(g) == expected


@pytest.mark.parametrize("g", POOL_GRAPHS, ids=POOL_IDS)
class TestChordalOutputs:
    def test_maximal_cliques_match_reference_and_networkx(self, g):
        if not is_chordal(g):
            with pytest.raises(NotChordalError):
                maximal_cliques(g)
            return
        ours = maximal_cliques(g)
        assert ours == chordal_mod._reference_maximal_cliques(g)
        if len(g):
            oracle = {frozenset(c) for c in nx.chordal_graph_cliques(to_networkx(g))}
            assert set(ours) == oracle

    def test_wcig_edges_match_reference(self, g):
        if not is_chordal(g):
            return
        cliques = maximal_cliques(g)
        assert wcig_edges_among(cliques) == _reference_wcig_edges_among(cliques)

    def test_greedy_coloring_matches_reference_and_is_optimal(self, g):
        if not is_chordal(g):
            with pytest.raises(NotChordalError):
                peo_greedy_coloring(g)
            return
        ours = peo_greedy_coloring(g)
        ref = _reference_peo_greedy_coloring(g)
        assert ours == ref
        assert list(ours) == list(ref)  # same insertion order too
        for u, v in g.edges():
            assert ours[u] != ours[v]
        if len(g):
            omega = max(len(c) for c in maximal_cliques(g))
            assert max(ours.values()) == omega

    @pytest.mark.parametrize("threshold", [2, 4, 6])
    def test_peeling_layers_match_rich_peeling(self, g, threshold):
        if not is_chordal(g):
            with pytest.raises(NotChordalError):
                peeling_layers(g, threshold)
            return
        rich = peel_chordal_graph(g, diameter_rule(threshold))
        fast = peeling_layers(g, threshold)
        assert fast.exhausted == rich.exhausted
        assert fast.num_layers() == rich.num_layers()
        for i in range(1, fast.num_layers() + 1):
            assert fast.nodes_of_layer(i) == rich.nodes_of_layer(i)
        assert fast.layer_of() == rich.layer_of

    def test_capped_peeling_matches(self, g):
        if not is_chordal(g):
            return
        rich = peel_chordal_graph(
            g, diameter_rule(4), max_iterations=2, last_iteration_rule=diameter_rule(1)
        )
        fast = peeling_layers(g, 4, max_iterations=2, last_threshold=1)
        assert fast.exhausted == rich.exhausted
        assert fast.num_layers() == rich.num_layers()
        for i in range(1, fast.num_layers() + 1):
            assert fast.nodes_of_layer(i) == rich.nodes_of_layer(i)


class TestLexBFSRegression:
    """Satellite: visit order pinned on the paper example + random graphs."""

    PAPER_ORDER = [
        1, 2, 3, 4, 8, 5, 6, 9, 10, 7, 11, 12,
        13, 14, 15, 16, 19, 17, 18, 20, 21, 22, 23,
    ]

    def test_paper_example_visit_order_pinned(self):
        g = paper_example_graph()
        assert lex_bfs(g) == self.PAPER_ORDER
        assert chordal_mod._reference_lex_bfs(g) == self.PAPER_ORDER

    def test_paper_example_reverse_is_peo(self):
        g = paper_example_graph()
        assert check_peo(g, list(reversed(self.PAPER_ORDER))) is None

    def test_random_chordal_orders_agree(self):
        for seed in range(10):
            g = random_chordal_graph(50, seed=seed)
            kernel_order = lex_bfs(g)
            assert kernel_order == chordal_mod._reference_lex_bfs(g)
            # multi-sweep (LBFS+) agreement as well
            assert lex_bfs(g, plus=kernel_order) == chordal_mod._reference_lex_bfs(
                g, plus=kernel_order
            )

    def test_reference_is_not_quadratic_shaped(self):
        # structural, not timed: the fixed reference visits a long path
        # without ever materializing O(n) blocks per step -- sanity-check
        # by output only (the timing claim lives in benchmarks).
        g = path_graph(2000)
        order = chordal_mod._reference_lex_bfs(g)
        assert order[0] == 0 and len(order) == 2000

    def test_validation_errors_preserved(self):
        g = path_graph(4)
        with pytest.raises(KeyError):
            lex_bfs(g, start=99)
        with pytest.raises(ValueError):
            lex_bfs(g, plus=[0, 1, 2])  # wrong length
        with pytest.raises(ValueError):
            lex_bfs(g, plus=[0, 1, 2, 2])  # duplicate
        with pytest.raises(ValueError):
            check_peo(g, [0, 1])


class TestNotChordalReporting:
    def test_same_violating_vertex_as_reference(self):
        for seed in range(6):
            g = _gnm(20, 50, seed)
            order = list(reversed(lex_bfs(g)))
            assert check_peo(g, order) == chordal_mod._reference_check_peo(g, order)

    def test_cycle_raises_with_vertex(self):
        with pytest.raises(NotChordalError) as exc:
            perfect_elimination_ordering(cycle_graph(6))
        assert exc.value.vertex is not None

    def test_kernel_first_violation_is_earliest(self):
        g = cycle_graph(8)
        idx = graph_index(g)
        order = kernels.lexbfs(idx)
        order.reverse()
        bad = kernels.check_peo(idx, order)
        ref_bad = chordal_mod._reference_check_peo(g, idx.labels_of(order))
        assert idx.verts[bad] == ref_bad


class TestKernelUnits:
    """Direct id-space kernel checks not covered via the wrappers."""

    def test_greedy_coloring_arbitrary_order(self):
        g = random_k_tree(30, 3, seed=1)
        idx = graph_index(g)
        order = list(range(idx.n))
        random.Random(3).shuffle(order)
        colors = kernels.greedy_coloring(idx, order)
        for i in range(idx.n):
            for j in idx.neighbors_of(i):
                assert colors[i] != colors[j]

    def test_spanning_forest_is_acyclic_and_max_weight_canonical(self):
        g = paper_example_graph()
        idx = graph_index(g)
        order, bad = kernels.peo_and_violation(idx)
        assert bad is None
        cliques = kernels.maximal_cliques_from_peo(idx, order)
        assert len(cliques) == len(paper_example_cliques())
        edges = kernels.clique_intersection_edges(cliques)
        forest = kernels.maximum_weight_spanning_forest_ids(cliques, edges)
        assert len(forest) <= len(cliques) - 1
        # compare against the label-space canonical forest
        from repro.cliquetree.forest import build_clique_forest

        ref = build_clique_forest(g)
        ref_edges = {
            frozenset((a, b)) for a, b in ref.edges()
        }
        ours = {
            frozenset(
                (
                    frozenset(idx.labels_of(cliques[i])),
                    frozenset(idx.labels_of(cliques[j])),
                )
            )
            for i, j in forest
        }
        assert ours == ref_edges

    def test_is_simplicial_id(self):
        g = path_graph(3)
        idx = graph_index(g)
        assert kernels.is_simplicial_id(idx, idx.vid[0])
        assert not kernels.is_simplicial_id(idx, idx.vid[1])


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(2, 18))
def test_property_random_graphs_agree_everywhere(seed, n):
    """Hypothesis sweep: arbitrary G(n, m) graphs, all dispatches agree."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for _ in range(rng.randint(0, 3 * n)):
        u, v = rng.sample(range(n), 2)
        g.add_edge(u, v)
    assert lex_bfs(g) == chordal_mod._reference_lex_bfs(g)
    assert (
        maximum_cardinality_search(g)
        == chordal_mod._reference_maximum_cardinality_search(g)
    )
    order = list(reversed(lex_bfs(g)))
    assert check_peo(g, order) == chordal_mod._reference_check_peo(g, order)
    assert simplicial_vertices(g) == chordal_mod._reference_simplicial_vertices(g)
    nxg = to_networkx(g)
    chordal = len(g) == 0 or nx.is_chordal(nxg)
    assert is_chordal(g) == chordal
    if chordal:
        assert maximal_cliques(g) == chordal_mod._reference_maximal_cliques(g)
        assert peo_greedy_coloring(g) == _reference_peo_greedy_coloring(g)
