"""Stateful property test: the Graph data structure under random mutation.

A hypothesis rule-based state machine mutates a Graph through its public
API while maintaining a reference model (a set of vertices and a set of
frozenset edges).  Invariants checked after every step: vertex/edge sets
match the model, adjacency is symmetric, degrees are consistent, and
derived views (copy, induced subgraph) don't alias the original.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.graphs import Graph

VERTICES = st.integers(0, 14)


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.graph = Graph()
        self.model_vertices = set()
        self.model_edges = set()

    @rule(v=VERTICES)
    def add_vertex(self, v):
        self.graph.add_vertex(v)
        self.model_vertices.add(v)

    @rule(u=VERTICES, v=VERTICES)
    def add_edge(self, u, v):
        if u == v:
            return
        self.graph.add_edge(u, v)
        self.model_vertices.update((u, v))
        self.model_edges.add(frozenset((u, v)))

    @rule(vs=st.lists(VERTICES, min_size=1, max_size=5, unique=True))
    def add_clique(self, vs):
        self.graph.add_clique(vs)
        self.model_vertices.update(vs)
        for i, a in enumerate(vs):
            for b in vs[i + 1:]:
                self.model_edges.add(frozenset((a, b)))

    @precondition(lambda self: self.model_vertices)
    @rule(data=st.data())
    def remove_vertex(self, data):
        v = data.draw(st.sampled_from(sorted(self.model_vertices)))
        self.graph.remove_vertex(v)
        self.model_vertices.discard(v)
        self.model_edges = {e for e in self.model_edges if v not in e}

    @precondition(lambda self: self.model_edges)
    @rule(data=st.data())
    def remove_edge(self, data):
        e = data.draw(st.sampled_from(sorted(self.model_edges, key=sorted)))
        u, v = sorted(e)
        self.graph.remove_edge(u, v)
        self.model_edges.discard(e)

    @rule()
    def copy_is_detached(self):
        clone = self.graph.copy()
        clone.add_vertex(999)
        assert 999 not in self.graph

    @precondition(lambda self: self.model_vertices)
    @rule(data=st.data())
    def induced_subgraph_is_consistent(self, data):
        keep = data.draw(
            st.sets(st.sampled_from(sorted(self.model_vertices)), max_size=6)
        )
        sub = self.graph.induced_subgraph(keep)
        assert set(sub.vertices()) == set(keep)
        for u, v in sub.edges():
            assert frozenset((u, v)) in self.model_edges

    @invariant()
    def matches_model(self):
        assert set(self.graph.vertices()) == self.model_vertices
        assert {frozenset(e) for e in self.graph.edges()} == self.model_edges
        assert self.graph.num_edges() == len(self.model_edges)

    @invariant()
    def adjacency_symmetric(self):
        for v in self.graph.vertices():
            for u in self.graph.neighbors(v):
                assert v in self.graph.neighbors(u)

    @invariant()
    def degrees_sum_to_twice_edges(self):
        total = sum(self.graph.degree(v) for v in self.graph.vertices())
        assert total == 2 * self.graph.num_edges()


TestGraphStateMachine = GraphMachine.TestCase
TestGraphStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
