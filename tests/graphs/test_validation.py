"""Output validators: colorings and independent sets."""

import pytest

from repro.graphs import (
    Graph,
    assert_independent_set,
    assert_proper_coloring,
    coloring_violation,
    complete_graph,
    independent_set_violation,
    is_distance_k_independent_set,
    is_independent_set,
    is_maximal_distance_k_independent_set,
    is_maximal_independent_set,
    is_proper_coloring,
    num_colors,
    path_graph,
)


class TestColoringValidation:
    def test_proper(self):
        g = path_graph(4)
        assert is_proper_coloring(g, {0: 1, 1: 2, 2: 1, 3: 2})

    def test_uncolored_vertex_reported(self):
        g = path_graph(3)
        assert coloring_violation(g, {0: 1, 1: 2}) == (2, 2)

    def test_monochromatic_edge_reported(self):
        g = path_graph(3)
        violation = coloring_violation(g, {0: 1, 1: 1, 2: 2})
        assert violation == (0, 1)

    def test_assert_helpers(self):
        g = path_graph(3)
        assert_proper_coloring(g, {0: 1, 1: 2, 2: 1})
        with pytest.raises(AssertionError, match="uncolored"):
            assert_proper_coloring(g, {0: 1})
        with pytest.raises(AssertionError, match="monochromatic"):
            assert_proper_coloring(g, {0: 1, 1: 1, 2: 2})

    def test_num_colors(self):
        assert num_colors({1: 5, 2: 5, 3: 7}) == 2
        assert num_colors({}) == 0


class TestIndependentSetValidation:
    def test_basic(self):
        g = path_graph(5)
        assert is_independent_set(g, [0, 2, 4])
        assert not is_independent_set(g, [0, 1])

    def test_duplicates_reported(self):
        g = path_graph(3)
        assert independent_set_violation(g, [0, 0]) == (0, 0)

    def test_foreign_vertex_reported(self):
        g = path_graph(3)
        assert independent_set_violation(g, [0, 42]) == (42, 42)

    def test_assert_helper(self):
        g = path_graph(4)
        assert_independent_set(g, [0, 2])
        with pytest.raises(AssertionError, match="adjacent"):
            assert_independent_set(g, [0, 1])

    def test_maximality(self):
        g = path_graph(5)
        assert is_maximal_independent_set(g, [0, 2, 4])
        assert is_maximal_independent_set(g, [0, 3])  # smaller but maximal
        assert not is_maximal_independent_set(g, [0])  # 3 could join
        assert not is_maximal_independent_set(g, [0, 1, 3])  # not independent


class TestDistanceK:
    def test_distance_two_is_plain_independence(self):
        g = path_graph(6)
        assert is_distance_k_independent_set(g, [0, 2, 4], 2)
        assert not is_distance_k_independent_set(g, [0, 1], 2)

    def test_distance_three_spacing(self):
        g = path_graph(10)
        assert is_distance_k_independent_set(g, [0, 3, 6, 9], 3)
        assert not is_distance_k_independent_set(g, [0, 2], 3)

    def test_maximality_with_spacing(self):
        g = path_graph(10)
        # members every 3: consecutive at distance 3, nothing can join
        assert is_maximal_distance_k_independent_set(g, [0, 3, 6, 9], 3)
        # gap of 6 leaves room at distance >= 3 from both
        assert not is_maximal_distance_k_independent_set(g, [0, 6], 3)

    def test_disconnected_members_are_far(self):
        g = Graph(vertices=[1, 2])
        assert is_distance_k_independent_set(g, [1, 2], 99)
