"""Tests for the GraphIndex snapshot and its version-based caching."""

import pytest

from repro.graphs import Graph, GraphIndex, graph_index, path_graph, random_k_tree


class TestGraphIndexStructure:
    def test_ids_follow_sorted_label_order(self):
        g = Graph(edges=[(30, 10), (10, 20), (20, 5)])
        idx = graph_index(g)
        assert list(idx.verts) == [5, 10, 20, 30]
        assert idx.vid == {5: 0, 10: 1, 20: 2, 30: 3}
        # order isomorphism: i < j iff verts[i] < verts[j]
        assert all(
            idx.verts[i] < idx.verts[j]
            for i in range(idx.n)
            for j in range(i + 1, idx.n)
        )

    def test_csr_rows_match_adjacency_and_are_sorted(self):
        g = random_k_tree(25, 3, seed=2)
        idx = graph_index(g)
        for v in g.vertices():
            i = idx.vid[v]
            row = idx.neighbors_of(i)
            assert row == sorted(row)
            assert [idx.verts[j] for j in row] == sorted(g.neighbors(v))
            assert idx.degree_of(i) == g.degree(v)
            assert list(idx.iter_neighbors(i)) == row

    def test_bitsets_encode_the_same_edges(self):
        g = random_k_tree(20, 2, seed=5)
        idx = graph_index(g)
        for i in range(idx.n):
            members = [j for j in range(idx.n) if idx.nbr_bits[i] >> j & 1]
            assert members == idx.neighbors_of(i)
        for u in g.vertices():
            for v in g.vertices():
                if u != v:
                    assert idx.has_edge_ids(idx.vid[u], idx.vid[v]) == g.has_edge(u, v)

    def test_counts(self):
        g = path_graph(7)
        idx = graph_index(g)
        assert idx.n == len(idx) == 7
        assert idx.m == g.num_edges() == 6

    def test_empty_graph(self):
        idx = graph_index(Graph())
        assert idx.n == 0 and idx.m == 0
        assert idx.verts == ()

    def test_label_translation_roundtrip(self):
        g = Graph(edges=[("b", "a"), ("a", "c")])
        idx = graph_index(g)
        ids = idx.ids_of(["c", "a"])
        assert idx.labels_of(ids) == ["c", "a"]

    def test_ids_of_unknown_label_raises(self):
        idx = graph_index(path_graph(3))
        with pytest.raises(KeyError):
            idx.ids_of([99])


class TestGraphIndexCaching:
    def test_same_object_until_mutation(self):
        g = path_graph(5)
        assert graph_index(g) is graph_index(g)

    def test_mutation_invalidates(self):
        g = path_graph(5)
        idx = graph_index(g)
        g.add_edge(0, 4)
        idx2 = graph_index(g)
        assert idx2 is not idx
        assert idx2.has_edge_ids(idx2.vid[0], idx2.vid[4])
        # the old snapshot still describes the older graph
        assert not idx.has_edge_ids(idx.vid[0], idx.vid[4])

    def test_noop_add_vertex_keeps_cache(self):
        g = path_graph(5)
        idx = graph_index(g)
        g.add_vertex(0)  # already present: no version bump
        assert graph_index(g) is idx

    def test_remove_invalidates(self):
        g = path_graph(5)
        idx = graph_index(g)
        g.remove_vertex(4)
        assert graph_index(g).n == idx.n - 1

    def test_copy_does_not_share_cache(self):
        g = path_graph(5)
        idx = graph_index(g)
        h = g.copy()
        idx_h = graph_index(h)
        assert idx_h is not idx
        h.add_edge(0, 4)
        assert graph_index(g) is idx  # original cache untouched
        assert graph_index(h) is not idx_h

    def test_constructor_directly_usable(self):
        g = path_graph(4)
        assert GraphIndex(g).neighbors_of(0) == [1]


class TestGraphVersionedViews:
    """The satellite Graph additions: cached vertices(), neighbors_view."""

    def test_vertices_cached_and_refreshed(self):
        g = Graph(edges=[(2, 1)])
        assert g.vertices() == [1, 2]
        g.add_vertex(0)
        assert g.vertices() == [0, 1, 2]
        g.remove_vertex(1)
        assert g.vertices() == [0, 2]

    def test_vertices_returns_a_fresh_copy(self):
        g = path_graph(4)
        first = g.vertices()
        first.append(99)
        assert g.vertices() == [0, 1, 2, 3]

    def test_version_counter_semantics(self):
        g = Graph()
        v0 = g.version
        g.add_vertex(1)
        assert g.version > v0
        v1 = g.version
        g.add_vertex(1)  # no-op
        assert g.version == v1
        g.add_edge(1, 2)
        assert g.version > v1
        v2 = g.version
        g.remove_edge(1, 2)
        assert g.version > v2

    def test_neighbors_view_tracks_without_copy(self):
        g = path_graph(4)
        view = g.neighbors_view(1)
        assert set(view) == {0, 2}
        assert view is g.neighbors_view(1)  # no per-call copy
        copy = g.neighbors(1)
        assert copy is not g.neighbors(1)

    def test_iter_neighbors(self):
        g = path_graph(4)
        assert sorted(g.iter_neighbors(1)) == [0, 2]
