"""Serialization round-trips and malformed-input handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    dump_json,
    from_dict,
    from_edge_list,
    intervals_from_text,
    intervals_to_text,
    load_json,
    paper_example_graph,
    random_chordal_graph,
    to_dict,
    to_edge_list,
)


class TestEdgeList:
    def test_round_trip_with_isolated_vertices(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.add_vertex(99)
        assert from_edge_list(to_edge_list(g)) == g

    def test_comments_and_blanks_ignored(self):
        text = """
        # a comment
        vertices: 1 2 3

        1 2  # trailing comment
        """
        g = from_edge_list(text)
        assert g.vertices() == [1, 2, 3]
        assert g.has_edge(1, 2)

    def test_string_vertices(self):
        g = Graph(edges=[("a", "b")])
        assert from_edge_list(to_edge_list(g)) == g

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            from_edge_list("1 2 3")

    def test_paper_graph_round_trip(self):
        g = paper_example_graph()
        assert from_edge_list(to_edge_list(g)) == g


class TestJson:
    def test_round_trip(self):
        g = random_chordal_graph(25, seed=9)
        assert load_json(dump_json(g)) == g

    def test_dict_round_trip(self):
        g = Graph(edges=[(0, 1)])
        g.add_vertex(5)
        assert from_dict(to_dict(g)) == g

    def test_bad_dict(self):
        with pytest.raises(ValueError):
            from_dict({"nodes": []})


class TestIntervals:
    def test_round_trip(self):
        intervals = {1: (0.0, 1.5), 2: (0.25, 3.0), "x": (-1.0, 0.0)}
        text = intervals_to_text(intervals)
        assert intervals_from_text(text) == intervals

    def test_malformed(self):
        with pytest.raises(ValueError):
            intervals_from_text("1 0.0")


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(0, 30))
def test_random_graph_round_trips(seed, n):
    g = random_chordal_graph(n, seed=seed)
    assert from_edge_list(to_edge_list(g)) == g
    assert load_json(dump_json(g)) == g
