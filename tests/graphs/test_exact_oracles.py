"""Brute-force oracles cross-checked against networkx on small graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    brute_force_chromatic_number,
    brute_force_independence_number,
    brute_force_maximum_independent_set,
    brute_force_optimal_coloring,
    complete_graph,
    cycle_graph,
    is_proper_coloring,
    path_graph,
    random_chordal_graph,
)
from tests.conftest import to_networkx


def small_random_graph(n, p, seed):
    import random

    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestBruteForceMIS:
    def test_known_values(self):
        assert brute_force_independence_number(path_graph(7)) == 4
        assert brute_force_independence_number(cycle_graph(7)) == 3
        assert brute_force_independence_number(complete_graph(5)) == 1
        assert brute_force_independence_number(Graph()) == 0

    def test_output_is_independent(self):
        g = small_random_graph(15, 0.4, seed=1)
        mis = brute_force_maximum_independent_set(g)
        assert g.is_independent_set(mis)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            brute_force_maximum_independent_set(path_graph(60))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(1, 14))
    def test_matches_networkx_complement_clique(self, seed, n):
        g = small_random_graph(n, 0.4, seed=seed)
        ours = brute_force_independence_number(g)
        comp = nx.complement(to_networkx(g))
        theirs = max((len(c) for c in nx.find_cliques(comp)), default=0)
        if n == 0:
            theirs = 0
        assert ours == theirs


class TestBruteForceColoring:
    def test_known_values(self):
        assert brute_force_chromatic_number(path_graph(5)) == 2
        assert brute_force_chromatic_number(cycle_graph(5)) == 3
        assert brute_force_chromatic_number(complete_graph(4)) == 4
        assert brute_force_chromatic_number(Graph()) == 0

    def test_coloring_is_proper_and_optimal(self):
        g = small_random_graph(12, 0.45, seed=2)
        coloring = brute_force_optimal_coloring(g)
        assert is_proper_coloring(g, coloring)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            brute_force_optimal_coloring(path_graph(60))

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(1, 11))
    def test_chordal_chromatic_equals_clique_number(self, seed, n):
        from repro.graphs import clique_number

        g = random_chordal_graph(n, seed=seed)
        assert brute_force_chromatic_number(g) == clique_number(g)
