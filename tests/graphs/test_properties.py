"""Degeneracy and the perfect-graph dual certificates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    clique_number,
    complete_graph,
    cycle_graph,
    degeneracy,
    degeneracy_ordering,
    density,
    is_clique_cover,
    minimum_clique_cover_chordal,
    path_graph,
    random_chordal_graph,
    random_k_tree,
    star_graph,
)
from repro.mis import independence_number_chordal


class TestDegeneracy:
    def test_known_values(self):
        assert degeneracy(path_graph(10)) == 1
        assert degeneracy(cycle_graph(10)) == 2
        assert degeneracy(complete_graph(5)) == 4
        assert degeneracy(star_graph(9)) == 1
        assert degeneracy(Graph()) == 0

    def test_ordering_covers_vertices(self):
        g = random_chordal_graph(30, seed=2)
        order, d = degeneracy_ordering(g)
        assert sorted(order) == g.vertices()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(1, 35))
    def test_chordal_degeneracy_is_omega_minus_one(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        expected = max(0, clique_number(g) - 1)
        assert degeneracy(g) == expected


class TestCliqueCover:
    def test_path(self):
        g = path_graph(6)
        cover = minimum_clique_cover_chordal(g)
        assert is_clique_cover(g, cover)
        assert len(cover) == 3  # alpha(P6) = 3

    def test_complete(self):
        cover = minimum_clique_cover_chordal(complete_graph(5))
        assert len(cover) == 1

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 35))
    def test_cover_size_equals_alpha(self, seed, n):
        """Perfection: minimum clique cover = alpha on chordal graphs."""
        g = random_chordal_graph(n, seed=seed)
        cover = minimum_clique_cover_chordal(g)
        assert is_clique_cover(g, cover)
        assert len(cover) == independence_number_chordal(g)

    def test_is_clique_cover_rejects_bad_inputs(self):
        g = path_graph(4)
        assert not is_clique_cover(g, [{0, 1}, {1, 2}, {3}])  # overlap
        assert not is_clique_cover(g, [{0, 1}])  # incomplete
        assert not is_clique_cover(g, [{0, 2}, {1, 3}])  # not cliques
        assert not is_clique_cover(g, [set(), {0, 1}, {2, 3}])  # empty part


class TestDensity:
    def test_values(self):
        assert density(complete_graph(5)) == 1.0
        assert density(path_graph(2)) == 1.0
        assert density(Graph(vertices=[1])) == 0.0
        assert 0 < density(path_graph(10)) < 0.5
