"""Chordal completions and treewidth helpers."""

import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.graphs import (
    Graph,
    clique_number,
    complete_graph,
    cycle_graph,
    elimination_ordering,
    fill_in_count,
    is_chordal,
    path_graph,
    random_chordal_graph,
    random_k_tree,
    treewidth_chordal,
    triangulate,
)
from tests.conftest import to_networkx


def random_graph(n, p, seed):
    import random

    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestFillIn:
    def test_fill_in_count(self):
        g = cycle_graph(4)
        assert fill_in_count(g, 0) == 1  # neighbors 1, 3 non-adjacent
        g.add_edge(1, 3)
        assert fill_in_count(g, 0) == 0

    def test_elimination_ordering_covers_all(self):
        g = random_graph(20, 0.3, seed=1)
        for heuristic in ("min_fill", "min_degree"):
            order = elimination_ordering(g, heuristic)
            assert sorted(order) == g.vertices()

    def test_unknown_heuristic(self):
        with pytest.raises(ValueError):
            elimination_ordering(path_graph(3), "magic")


class TestTriangulate:
    def test_cycle_gets_chords(self):
        g = cycle_graph(8)
        tri = triangulate(g)
        assert is_chordal(tri.chordal_graph)
        assert len(tri.fill_edges) >= 1
        # the input is a subgraph of the completion
        for e in g.edges():
            assert tri.chordal_graph.has_edge(*e)

    def test_chordal_input_adds_nothing_with_min_fill(self):
        for seed in range(6):
            g = random_chordal_graph(25, seed=seed)
            tri = triangulate(g, "min_fill")
            assert tri.fill_edges == []
            assert tri.chordal_graph == g

    def test_width_matches_clique_number(self):
        g = cycle_graph(10)
        tri = triangulate(g)
        assert clique_number(tri.chordal_graph) <= tri.width + 1

    def test_cycle_treewidth_two(self):
        tri = triangulate(cycle_graph(30), "min_fill")
        assert tri.width == 2  # cycles have treewidth 2

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(2, 18))
    def test_random_graphs_complete_to_chordal(self, seed, n):
        g = random_graph(n, 0.35, seed=seed)
        for heuristic in ("min_fill", "min_degree"):
            tri = triangulate(g, heuristic)
            assert is_chordal(tri.chordal_graph)
            assert nx.is_chordal(to_networkx(tri.chordal_graph)) or n <= 2
            assert tri.chordal_graph.num_edges() == (
                g.num_edges() + len(tri.fill_edges)
            )

    def test_pipeline_on_triangulated_graph(self):
        """Triangulation makes arbitrary inputs usable by the algorithms."""
        from repro.coloring import color_chordal_graph
        from repro.graphs import is_proper_coloring

        g = random_graph(40, 0.08, seed=3)
        tri = triangulate(g)
        result = color_chordal_graph(tri.chordal_graph, k=2)
        # a proper coloring of the completion is proper for the original
        assert is_proper_coloring(g, result.coloring)


class TestTreewidth:
    def test_chordal_values(self):
        assert treewidth_chordal(path_graph(5)) == 1
        assert treewidth_chordal(complete_graph(6)) == 5
        assert treewidth_chordal(Graph()) == -1
        assert treewidth_chordal(random_k_tree(30, 3, seed=1)) == 3

    def test_rejects_non_chordal(self):
        with pytest.raises(ValueError):
            treewidth_chordal(cycle_graph(5))
