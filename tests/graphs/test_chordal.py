"""Tests for chordality machinery, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    NotChordalError,
    Graph,
    check_peo,
    clique_number,
    complete_graph,
    cycle_graph,
    is_chordal,
    is_simplicial,
    lex_bfs,
    maximal_cliques,
    maximum_cardinality_search,
    paper_example_graph,
    paper_example_cliques,
    path_graph,
    perfect_elimination_ordering,
    random_chordal_graph,
    random_interval_graph,
    random_k_tree,
    random_tree,
    simplicial_vertices,
)
from tests.conftest import to_networkx


class TestLexBFS:
    def test_empty(self):
        assert lex_bfs(Graph()) == []

    def test_visits_all(self):
        g = random_chordal_graph(30, seed=1)
        order = lex_bfs(g)
        assert sorted(order) == g.vertices()

    def test_start_vertex(self):
        g = path_graph(5)
        assert lex_bfs(g, start=3)[0] == 3

    def test_unknown_start(self):
        with pytest.raises(KeyError):
            lex_bfs(path_graph(3), start=42)

    def test_deterministic(self):
        g = random_chordal_graph(40, seed=7)
        assert lex_bfs(g) == lex_bfs(g)


class TestPEO:
    def test_path_is_chordal(self):
        order = perfect_elimination_ordering(path_graph(8))
        assert check_peo(path_graph(8), order) is None

    def test_cycle_not_chordal(self):
        with pytest.raises(NotChordalError):
            perfect_elimination_ordering(cycle_graph(5))

    def test_check_peo_bad_order(self):
        # On C4, no ordering is a PEO.
        g = cycle_graph(4)
        assert check_peo(g, [0, 1, 2, 3]) is not None

    def test_check_peo_wrong_length(self):
        with pytest.raises(ValueError):
            check_peo(path_graph(3), [0, 1])

    def test_mcs_reverse_is_peo_on_chordal(self):
        g = random_k_tree(25, 3, seed=5)
        order = list(reversed(maximum_cardinality_search(g)))
        assert check_peo(g, order) is None

    def test_is_chordal_matches_networkx(self):
        for seed in range(10):
            g = random_chordal_graph(25, seed=seed)
            nxg = to_networkx(g)
            # networkx requires no self loops and works on any graph
            assert is_chordal(g) == nx.is_chordal(nxg)

    def test_non_chordal_detected(self):
        assert not is_chordal(cycle_graph(4))
        assert not is_chordal(cycle_graph(6))
        assert is_chordal(cycle_graph(3))


class TestSimplicial:
    def test_path_ends_simplicial(self):
        g = path_graph(5)
        assert is_simplicial(g, 0)
        assert not is_simplicial(g, 2)
        assert simplicial_vertices(g) == [0, 4]

    def test_complete_graph_all_simplicial(self):
        g = complete_graph(4)
        assert simplicial_vertices(g) == [0, 1, 2, 3]


class TestMaximalCliques:
    def test_paper_example(self):
        g = paper_example_graph()
        ours = set(maximal_cliques(g))
        assert ours == set(paper_example_cliques())

    def test_matches_networkx_on_random(self):
        for seed in range(8):
            g = random_chordal_graph(30, seed=seed)
            ours = set(maximal_cliques(g))
            theirs = {frozenset(c) for c in nx.chordal_graph_cliques(to_networkx(g))}
            assert ours == theirs

    def test_at_most_n_cliques(self):
        for seed in range(5):
            g = random_k_tree(40, 4, seed=seed)
            assert len(maximal_cliques(g)) <= len(g)

    def test_raises_on_non_chordal(self):
        with pytest.raises(NotChordalError):
            maximal_cliques(cycle_graph(4))

    def test_clique_number(self):
        assert clique_number(complete_graph(6)) == 6
        assert clique_number(path_graph(4)) == 2
        assert clique_number(Graph()) == 0
        assert clique_number(paper_example_graph()) == 3


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
def test_generators_produce_chordal_graphs(seed, n):
    g = random_chordal_graph(n, seed=seed)
    assert is_chordal(g)
    assert nx.is_chordal(to_networkx(g)) or len(g) <= 1


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(5, 40), k=st.integers(1, 4))
def test_k_tree_is_chordal_with_right_clique_number(seed, n, k):
    g = random_k_tree(n, k, seed=seed)
    assert is_chordal(g)
    assert clique_number(g) == k + 1


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
def test_interval_graphs_are_chordal(seed, n):
    g = random_interval_graph(n, seed=seed, max_length=0.3)
    assert is_chordal(g)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
def test_trees_are_chordal(seed, n):
    assert is_chordal(random_tree(n, seed=seed))
