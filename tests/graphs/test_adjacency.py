"""Unit tests for the core Graph data structure."""

import pytest

from repro.graphs import Graph, path_graph, complete_graph, cycle_graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert len(g) == 0
        assert g.num_edges() == 0
        assert g.vertices() == []
        assert g.edges() == []

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.vertices() == [1]

    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.vertices() == [1, 2]
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(3, 3)

    def test_add_clique(self):
        g = Graph()
        g.add_clique([1, 2, 3])
        assert g.num_edges() == 3
        assert g.is_clique([1, 2, 3])

    def test_constructor_with_edges(self):
        g = Graph(vertices=[5], edges=[(1, 2), (2, 3)])
        assert g.vertices() == [1, 2, 3, 5]
        assert g.num_edges() == 2

    def test_copy_is_independent(self):
        g = path_graph(3)
        h = g.copy()
        h.add_edge(0, 2)
        assert not g.has_edge(0, 2)
        assert h.has_edge(0, 2)

    def test_equality(self):
        assert path_graph(4) == path_graph(4)
        assert path_graph(4) != path_graph(5)
        assert path_graph(3) != cycle_graph(3)


class TestRemoval:
    def test_remove_vertex(self):
        g = path_graph(3)
        g.remove_vertex(1)
        assert g.vertices() == [0, 2]
        assert g.num_edges() == 0

    def test_remove_missing_vertex_raises(self):
        g = path_graph(2)
        with pytest.raises(KeyError):
            g.remove_vertex(99)

    def test_remove_edge(self):
        g = path_graph(3)
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_remove_vertices(self):
        g = complete_graph(5)
        g.remove_vertices([0, 1])
        assert g.vertices() == [2, 3, 4]
        assert g.num_edges() == 3


class TestNeighborhoods:
    def test_open_and_closed(self):
        g = path_graph(5)
        assert g.neighbors(2) == {1, 3}
        assert g.closed_neighborhood(2) == {1, 2, 3}

    def test_neighbors_returns_copy(self):
        g = path_graph(3)
        nbrs = g.neighbors(1)
        nbrs.add(99)
        assert g.neighbors(1) == {0, 2}

    def test_set_neighborhood(self):
        g = path_graph(6)
        assert g.set_neighborhood([2, 3]) == {1, 4}
        assert g.closed_set_neighborhood([2, 3]) == {1, 2, 3, 4}

    def test_degrees(self):
        g = path_graph(4)
        assert g.degree(0) == 1
        assert g.degree(1) == 2
        assert g.max_degree() == 2
        assert Graph().max_degree() == 0


class TestPredicates:
    def test_is_clique(self):
        g = complete_graph(4)
        assert g.is_clique([0, 1, 2, 3])
        g.remove_edge(0, 1)
        assert not g.is_clique([0, 1, 2, 3])
        assert g.is_clique([])
        assert g.is_clique([2])

    def test_is_independent_set(self):
        g = path_graph(5)
        assert g.is_independent_set([0, 2, 4])
        assert not g.is_independent_set([0, 1])


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = cycle_graph(5)
        h = g.induced_subgraph([0, 1, 2])
        assert h.edges() == [(0, 1), (1, 2)]

    def test_induced_subgraph_unknown_vertex(self):
        with pytest.raises(KeyError):
            path_graph(3).induced_subgraph([0, 99])

    def test_subgraph_without(self):
        g = path_graph(5)
        h = g.subgraph_without([2])
        assert h.vertices() == [0, 1, 3, 4]
        assert h.edges() == [(0, 1), (3, 4)]

    def test_power(self):
        g = path_graph(5)
        g2 = g.power(2)
        assert g2.has_edge(0, 2)
        assert not g2.has_edge(0, 3)
        g4 = g.power(4)
        assert g4.num_edges() == 10  # complete

    def test_power_invalid(self):
        with pytest.raises(ValueError):
            path_graph(3).power(0)


class TestTraversal:
    def test_bfs_distances(self):
        g = path_graph(6)
        dist = g.bfs_distances(0)
        assert dist == {i: i for i in range(6)}

    def test_bfs_cutoff(self):
        g = path_graph(10)
        dist = g.bfs_distances(0, cutoff=3)
        assert set(dist) == {0, 1, 2, 3}

    def test_ball(self):
        g = path_graph(10)
        assert g.ball(5, 2) == {3, 4, 5, 6, 7}

    def test_distance_disconnected(self):
        g = Graph(vertices=[1, 2])
        assert g.distance(1, 2) is None

    def test_connected_components(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        g.add_vertex(9)
        comps = g.connected_components()
        assert comps == [{1, 2}, {3, 4}, {9}]

    def test_diameter(self):
        assert path_graph(7).diameter() == 6
        assert complete_graph(4).diameter() == 1

    def test_diameter_disconnected_raises(self):
        g = Graph(vertices=[1, 2])
        with pytest.raises(ValueError):
            g.diameter()

    def test_eccentricity_within(self):
        g = path_graph(9)
        assert g.eccentricity_within([2, 6]) == 4
        assert g.eccentricity_within([4]) == 0
