"""Interval representations, domination removal, umbrella orders."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    NotProperIntervalError,
    brute_force_independence_number,
    complete_graph,
    dominated_vertices,
    interval_graph_from_intervals,
    is_proper_interval_order,
    path_graph,
    proper_interval_order,
    random_interval_graph,
    random_proper_interval_graph,
    remove_dominated_vertices,
    star_graph,
    unit_interval_chain,
)


class TestIntervalConstruction:
    def test_basic_intersections(self):
        g = interval_graph_from_intervals(
            {1: (0, 2), 2: (1, 3), 3: (2.5, 4), 4: (5, 6)}
        )
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 3)
        assert not g.has_edge(1, 3)
        assert g.degree(4) == 0

    def test_touching_endpoints_count(self):
        g = interval_graph_from_intervals({1: (0, 1), 2: (1, 2)})
        assert g.has_edge(1, 2)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            interval_graph_from_intervals({1: (2, 1)})

    def test_empty(self):
        assert len(interval_graph_from_intervals({})) == 0


class TestDomination:
    def test_nested_interval_dominated(self):
        # 2's interval is nested in 1's and 1 reaches an extra neighbor
        g = interval_graph_from_intervals(
            {1: (0, 4), 2: (1, 2), 3: (3.5, 5)}
        )
        # Gamma[1] = {1,2,3} strictly contains Gamma[2] = {1,2}
        assert 1 in dominated_vertices(g)

    def test_twins_not_dominated(self):
        g = complete_graph(4)
        assert dominated_vertices(g) == set()

    def test_alpha_preserved(self):
        for seed in range(12):
            g = random_interval_graph(22, seed=seed, max_length=0.3)
            h = remove_dominated_vertices(g)
            assert brute_force_independence_number(
                g
            ) == brute_force_independence_number(h)

    def test_result_is_proper_interval(self):
        """One-shot removal leaves a proper interval graph (claw-free)."""
        for seed in range(8):
            g = random_interval_graph(25, seed=seed, max_length=0.25)
            h = remove_dominated_vertices(g)
            for comp in h.connected_components():
                sub = h.induced_subgraph(comp)
                proper_interval_order(sub)  # raises if not proper interval

    def test_star_center_removed(self):
        """The center's closed neighborhood strictly contains every leaf's,
        so the center is the dominated one -- leaves are the better
        independent-set members."""
        g = star_graph(5)
        h = remove_dominated_vertices(g)
        assert h.vertices() == [1, 2, 3, 4, 5]


class TestUmbrellaOrder:
    def test_path_order(self):
        g = path_graph(10)
        order = proper_interval_order(g)
        assert is_proper_interval_order(g, order)
        assert order in (list(range(10)), list(range(9, -1, -1)))

    def test_unit_chains(self):
        for seed in range(6):
            g = unit_interval_chain(60, seed=seed)
            h = remove_dominated_vertices(g)
            for comp in h.connected_components():
                sub = h.induced_subgraph(comp)
                order = proper_interval_order(sub)
                assert is_proper_interval_order(sub, order)

    def test_rejects_disconnected(self):
        g = Graph(vertices=[1, 2])
        with pytest.raises(NotProperIntervalError):
            proper_interval_order(g)

    def test_rejects_non_proper_interval(self):
        with pytest.raises(NotProperIntervalError):
            proper_interval_order(star_graph(3))  # the claw itself

    def test_umbrella_check_rejects_bad_orders(self):
        g = path_graph(5)
        assert not is_proper_interval_order(g, [0, 2, 1, 3, 4])
        assert not is_proper_interval_order(g, [0, 1, 2])  # wrong length


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
def test_proper_interval_generator_has_umbrella_orders(seed, n):
    g = random_proper_interval_graph(n, seed=seed, length=0.15)
    for comp in g.connected_components():
        sub = g.induced_subgraph(comp)
        order = proper_interval_order(sub)
        assert is_proper_interval_order(sub, order)
