"""Generator invariants: sizes, structure, determinism, validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    binary_tree,
    caterpillar,
    complete_graph,
    cycle_graph,
    is_chordal,
    path_graph,
    random_chordal_graph,
    random_connected_interval_graph,
    random_interval_graph,
    random_k_tree,
    random_proper_interval_graph,
    random_tree,
    star_graph,
    unit_interval_chain,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(6)
        assert len(g) == 6 and g.num_edges() == 5

    def test_path_zero_and_one(self):
        assert len(path_graph(0)) == 0
        assert len(path_graph(1)) == 1

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges() == 5
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges() == 15

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.num_edges() == 7

    def test_caterpillar_is_tree(self):
        g = caterpillar(spine=5, legs_per_vertex=2)
        assert len(g) == 15
        assert g.num_edges() == 14
        assert g.is_connected()

    def test_binary_tree(self):
        g = binary_tree(3)
        assert len(g) == 15
        assert g.num_edges() == 14


class TestRandomFamilies:
    def test_tree_is_tree(self):
        for seed in range(5):
            g = random_tree(50, seed=seed)
            assert g.num_edges() == 49
            assert g.is_connected()

    def test_determinism(self):
        assert random_tree(30, seed=4) == random_tree(30, seed=4)
        assert random_chordal_graph(30, seed=4) == random_chordal_graph(30, seed=4)
        assert random_k_tree(30, 2, seed=4) == random_k_tree(30, 2, seed=4)

    def test_k_tree_too_small(self):
        with pytest.raises(ValueError):
            random_k_tree(3, 3, seed=0)

    def test_k_tree_edge_count(self):
        n, k = 40, 3
        g = random_k_tree(n, k, seed=1)
        # k-trees have exactly k(k+1)/2 + (n - k - 1) k edges
        assert g.num_edges() == k * (k + 1) // 2 + (n - k - 1) * k

    def test_connected_interval_graph_connected(self):
        for seed in range(5):
            g = random_connected_interval_graph(80, seed=seed)
            assert g.is_connected()
            assert g.diameter() >= 10

    def test_connected_interval_parameter_validation(self):
        with pytest.raises(ValueError):
            random_connected_interval_graph(10, seed=0, min_length=0.5, max_step=0.9)

    def test_unit_chain_connected_and_long(self):
        g = unit_interval_chain(100, seed=0)
        assert g.is_connected()
        assert g.diameter() >= 10

    def test_unit_chain_parameter_validation(self):
        with pytest.raises(ValueError):
            unit_interval_chain(10, seed=0, max_step=1.5)

    def test_proper_interval_graph_seeded(self):
        a = random_proper_interval_graph(25, seed=3)
        b = random_proper_interval_graph(25, seed=3)
        assert a == b


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 50))
def test_all_chordal_families_are_chordal(seed, n):
    assert is_chordal(random_tree(n, seed=seed))
    assert is_chordal(random_chordal_graph(n, seed=seed))
    assert is_chordal(random_interval_graph(n, seed=seed))
    assert is_chordal(unit_interval_chain(n, seed=seed))
    if n >= 3:
        assert is_chordal(random_k_tree(n, 2, seed=seed))


class TestNewFamilies:
    def test_split_graph_is_chordal_and_split(self):
        from repro.graphs import is_chordal, random_split_graph

        for seed in range(5):
            g = random_split_graph(50, seed=seed)
            assert is_chordal(g)
            # clique part is a clique; the rest is independent
            clique = list(range(20))
            assert g.is_clique(clique)
            assert g.is_independent_set(range(20, 50))

    def test_split_graph_validation(self):
        from repro.graphs import random_split_graph

        with pytest.raises(ValueError):
            random_split_graph(10, clique_fraction=1.5)

    def test_power_law_tree_is_tree(self):
        from repro.graphs import power_law_tree

        g = power_law_tree(60, seed=1)
        assert g.num_edges() == 59
        assert g.is_connected()

    def test_power_law_tree_has_hubs(self):
        from repro.graphs import power_law_tree, random_tree

        hubby = max(power_law_tree(300, seed=2, bias=0.2).degree(v) for v in range(300))
        uniform = max(random_tree(300, seed=2).degree(v) for v in range(300))
        assert hubby >= uniform  # preferential attachment concentrates degree

    def test_power_law_tree_validation(self):
        from repro.graphs import power_law_tree

        with pytest.raises(ValueError):
            power_law_tree(10, bias=0)

    def test_pipeline_on_new_families(self):
        from repro.coloring import color_chordal_graph
        from repro.graphs import power_law_tree, random_split_graph
        from repro.mis import chordal_mis
        from repro.verify import verify_coloring_run, verify_mis_run

        for g in (random_split_graph(60, seed=3), power_law_tree(80, seed=3)):
            verify_coloring_run(g, color_chordal_graph(g, k=2)).raise_if_failed()
            verify_mis_run(g, chordal_mis(g, 0.4)).raise_if_failed()
