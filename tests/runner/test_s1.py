"""The S1 experiment: plan shape and the stabilization/chaos cells."""

import json

from repro.runner import plan_cells
from repro.runner.cells import s1_cell, s1_chaos_cell


class TestPlan:
    def test_default_plan_shape(self):
        specs = plan_cells(["S1"])
        assert len(specs) == 11
        assert [s.fn for s in specs] == ["s1_cell"] * 8 + ["s1_chaos_cell"] * 3
        matrix = {
            (s.params["program"], s.params["repaired"], s.params["kind"])
            for s in specs
            if s.fn == "s1_cell"
        }
        assert matrix == {
            (p, r, k)
            for p in ("coloring", "mis")
            for r in (False, True)
            for k in ("flip", "scramble")
        }
        assert [s.params["program"] for s in specs if s.fn == "s1_chaos_cell"] == [
            "bfs", "coloring", "luby",
        ]

    def test_overrides_shrink_the_sweep(self):
        specs = plan_cells(["S1"], overrides={"S1": {
            "programs": ("mis",), "kinds": ("flip",),
            "chaos_programs": (), "n": 8,
        }})
        assert len(specs) == 2
        assert all(s.params["n"] == 8 for s in specs)


class TestS1Cell:
    def test_deterministic_and_json_plain(self):
        a = s1_cell(program="mis", repaired=True, kind="flip", n=8, seed=0)
        b = s1_cell(program="mis", repaired=True, kind="flip", n=8, seed=0)
        assert a == b
        assert json.loads(json.dumps(a)) == a

    def test_repaired_flip_self_heals(self):
        payload = s1_cell(program="mis", repaired=True, kind="flip", n=8, seed=0)
        assert payload["classification"] == "self-healing"
        assert payload["recovered"]
        assert payload["repairs"] >= 1
        assert payload["injected"]["corrupt_events"] == 1

    def test_unrepaired_flip_is_unsafe(self):
        payload = s1_cell(program="mis", repaired=False, kind="flip", n=8, seed=0)
        assert payload["classification"] == "unsafe"
        assert payload["problems"]

    def test_flip_provably_violates_for_coloring_too(self):
        # the flip probe must key the corruption stream on the real
        # injection round; a mis-keyed probe shows up here as a flip
        # that never trips the validator
        payload = s1_cell(
            program="coloring", repaired=False, kind="flip", n=8, seed=0
        )
        assert payload["classification"] == "unsafe"

    def test_plan_field_replays_through_the_grammar(self):
        from repro.localmodel import FaultPlan

        payload = s1_cell(program="mis", repaired=True, kind="scramble", n=8, seed=0)
        plan = FaultPlan.parse(payload["plan"])
        assert len(plan.corrupts) == 1
        assert payload["victim"] == str(plan.corrupts[0].node)


class TestS1ChaosCell:
    def test_soak_accounting_and_repro_gate(self):
        payload = s1_chaos_cell(program="bfs", trials=6, seed=0, n=8)
        assert payload["trials"] == 6
        assert payload["failures"] == sum(payload["by_kind"].values())
        assert payload["minimized"] == payload["failures"]
        assert payload["all_reproduce"] is True
        assert len(payload["specs"]) == payload["failures"]
        # the soak routes through the per-node path and says why
        assert payload["executor"]["executed"] == "node"
        assert "fault plan is non-empty" in payload["executor"]["fallback_reason"]

    def test_deterministic(self):
        a = s1_chaos_cell(program="luby", trials=4, seed=1, n=8)
        b = s1_chaos_cell(program="luby", trials=4, seed=1, n=8)
        assert a == b
        assert json.loads(json.dumps(a)) == a
