"""Byte-compatibility: the engine reproduces the serial tables exactly.

Ground truth is :mod:`repro.analysis.experiments` — the original nested
serial loops, untouched by the runner — formatted the way the legacy
report formatted them.  The runner must match byte for byte at any job
count, including fold tie-breaks (T3's ``>=`` lets the latest worst seed
win) and the max-over-seeds reductions.
"""

import pytest

from repro.analysis.experiments import (
    baseline_rows,
    chordal_mis_rows,
    interval_mis_rows,
    lower_bound_rows,
    mvc_approximation_rows,
    mvc_rounds_rows,
    mvc_rounds_vs_epsilon_rows,
    pruning_rows,
)
from repro.analysis.report import main as report_main
from repro.analysis.tables import format_table
from repro.runner import run_experiments
from repro.runner.registry import REGISTRY

# small parameterizations, applied identically to both sides
T3_ARGS = {"eps_values": (1.0, 0.5), "n": 40, "seeds": (0, 1)}
T4_ARGS = {"ns": (40, 80), "epsilon": 1.0, "eps_values": (2.0, 1.0), "eps_n": 60}
T56_ARGS = {"eps_values": (0.8, 0.4), "n": 80, "seeds": (0, 1)}
T78_ARGS = {"eps_values": (0.45, 0.3), "n": 50, "seeds": (0,)}
T9_ARGS = {"r_values": (4, 8), "n": 600, "trials": 3}
L6_ARGS = {"ns": (40, 80)}
B1_ARGS = {"n": 60, "seeds": (0, 1)}


def legacy_tables():
    t3 = format_table(
        ["family", "eps", "chi", "colors", "worst ratio", "bound 1+eps"],
        mvc_approximation_rows(**T3_ARGS),
    )
    t4 = (
        format_table(
            ["n", "layers", "pruning rounds", "total rounds"],
            mvc_rounds_rows(ns=T4_ARGS["ns"], epsilon=T4_ARGS["epsilon"]),
        )
        + "\n\n(rounds vs eps at n = 300, random trees)\n\n"
        + format_table(
            ["eps", "k", "total rounds", "colors"],
            mvc_rounds_vs_epsilon_rows(
                eps_values=T4_ARGS["eps_values"], n=T4_ARGS["eps_n"]
            ),
        )
    )
    t56 = format_table(
        ["eps", "worst alpha/|I|", "bound 1+eps", "rounds"],
        interval_mis_rows(**T56_ARGS),
    )
    t78 = format_table(
        ["family", "eps", "worst alpha/|I|", "bound 1+eps", "rounds"],
        chordal_mis_rows(**T78_ARGS),
    )
    t9 = format_table(
        ["r", "E|I|", "optimum", "density gap", "r x gap"],
        lower_bound_rows(**T9_ARGS),
    )
    l6 = format_table(
        ["n", "layers", "ceil(log2 n) + 1"], pruning_rows(ns=L6_ARGS["ns"])
    )
    b1 = format_table(
        ["family", "chi", "greedy colors", "our colors", "alpha", "Luby |I|",
         "our |I|"],
        baseline_rows(**B1_ARGS),
    )
    return {"T3": t3, "T4": t4, "T5/T6": t56, "T7/T8": t78, "T9": t9,
            "L6": l6, "B1": b1}


OVERRIDES = {
    "T3": T3_ARGS,
    "T4": T4_ARGS,
    "T5/T6": T56_ARGS,
    "T7/T8": T78_ARGS,
    "T9": T9_ARGS,
    "L6": L6_ARGS,
    "B1": B1_ARGS,
}


@pytest.fixture(scope="module")
def expected():
    return legacy_tables()


@pytest.mark.parametrize("jobs", [1, 3])
def test_engine_tables_are_byte_identical(expected, jobs):
    ids = list(expected)
    report, results, stats = run_experiments(ids, jobs=jobs, overrides=OVERRIDES)
    assert stats.failed == 0 and stats.timeouts == 0
    chunks = [
        f"== {eid}: {REGISTRY[eid].title} ==\n\n{expected[eid]}\n" for eid in ids
    ]
    assert report == "\n".join(chunks)


def test_full_report_framing_matches_legacy_shape():
    report, _, _ = run_experiments(["L6"], overrides=OVERRIDES)
    assert report.startswith("== L6: Lemma 6: peeling layer count vs log n ==\n\n")
    assert report.endswith("\n")


class TestUnknownIdExit:
    """Bugfix: ``python -m repro.analysis.report BOGUS`` must fail loudly."""

    def test_unknown_id_exits_nonzero_listing_known_ids(self, capsys):
        code = report_main(["BOGUS"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment id" in err
        assert "known ids are" in err
        assert "T5/T6" in err

    def test_known_subset_still_works(self, capsys):
        code = report_main(["L6"])
        assert code == 0
        assert "Lemma 6" in capsys.readouterr().out

    def test_alias_accepted(self, capsys):
        code = report_main(["T5"])
        assert code == 0
        assert "Theorems 5-6" in capsys.readouterr().out
