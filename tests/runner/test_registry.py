"""The experiment registry: ids, aliases, plans, and framing."""

import json

import pytest

from repro.runner import (
    REGISTRY,
    UnknownExperimentError,
    experiment_ids,
    plan_cells,
    resolve_ids,
)
from repro.runner import cells as cell_functions
from repro.runner.registry import ALIASES


class TestIds:
    def test_registry_covers_experiments_md(self):
        assert experiment_ids() == [
            "T3", "T4", "T5/T6", "T7/T8", "T9", "L6", "B1", "F1-F6", "X1",
            "A1-A3", "K1", "C1", "D1", "K2", "F7", "S1",
        ]

    def test_empty_selection_means_everything(self):
        assert resolve_ids([]) == experiment_ids()

    def test_aliases_resolve_to_canonical(self):
        assert resolve_ids(["T5"]) == ["T5/T6"]
        assert resolve_ids(["t7-8"]) == ["T7/T8"]
        assert resolve_ids(["F3"]) == ["F1-F6"]

    def test_order_is_registry_order_not_request_order(self):
        assert resolve_ids(["B1", "T3"]) == ["T3", "B1"]

    def test_duplicates_collapse(self):
        assert resolve_ids(["T5", "T6", "T5/T6"]) == ["T5/T6"]

    def test_unknown_id_raises_with_known_ids(self):
        with pytest.raises(UnknownExperimentError) as err:
            resolve_ids(["T4", "BOGUS"])
        assert "BOGUS" in str(err.value)
        assert "T5/T6" in str(err.value)

    def test_aliases_point_at_real_experiments(self):
        for target in ALIASES.values():
            assert target in REGISTRY


class TestPlans:
    def test_every_cell_fn_exists_and_is_top_level(self):
        for spec in plan_cells():
            fn = getattr(cell_functions, spec.fn)
            assert callable(fn)
            # addressable by name from a worker process
            assert getattr(cell_functions, fn.__name__) is fn

    def test_params_are_json_plain(self):
        for spec in plan_cells():
            assert json.loads(json.dumps(spec.params)) == spec.params

    def test_cells_grouped_by_experiment_in_plan_order(self):
        specs = plan_cells(["T3", "L6"])
        ids = [s.experiment for s in specs]
        assert ids == ["T3"] * 36 + ["L6"] * 5

    def test_overrides_shrink_a_sweep(self):
        specs = plan_cells(["T3"], overrides={"T3": {
            "eps_values": (1.0,), "n": 30, "seeds": (0,)}})
        assert len(specs) == 4  # one per family
        assert all(s.params["n"] == 30 for s in specs)

    def test_deps_name_existing_modules(self):
        from repro.runner.sourcehash import module_file

        for exp in REGISTRY.values():
            for dep in exp.deps:
                assert module_file(dep) is not None, dep
