"""Content-addressed cache and the source-hash closure."""

import json
from pathlib import Path

from repro.runner.cache import ResultCache, cell_key
from repro.runner.sourcehash import module_closure, module_file, source_hash


class TestCellKey:
    def test_param_order_does_not_matter(self):
        a = cell_key("T3", "t3_cell", {"n": 10, "seed": 0}, "abc")
        b = cell_key("T3", "t3_cell", {"seed": 0, "n": 10}, "abc")
        assert a == b

    def test_any_component_changes_the_key(self):
        base = cell_key("T3", "t3_cell", {"n": 10}, "abc")
        assert cell_key("T4", "t3_cell", {"n": 10}, "abc") != base
        assert cell_key("T3", "other", {"n": 10}, "abc") != base
        assert cell_key("T3", "t3_cell", {"n": 11}, "abc") != base
        assert cell_key("T3", "t3_cell", {"n": 10}, "xyz") != base


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cell_key("T9", "t9_cell", {"r": 4}, "h")
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, {"density_gap": 0.25}, {"experiment": "T9"})
        hit, value = cache.get(key)
        assert hit and value == {"density_gap": 0.25}
        assert cache.hits == 1 and cache.misses == 1

    def test_floats_survive_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        ugly = 0.1 + 0.2  # not representable; must round-trip bit-for-bit
        cache.put("k" * 64, {"x": ugly})
        _, value = cache.get("k" * 64)
        assert value["x"] == ugly

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, 1)
        path = next(Path(tmp_path).glob("*/*.json"))
        path.write_text("{not json")
        hit, _ = cache.get("a" * 64)
        assert not hit

    def test_clean_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for i in range(3):
            cache.put(f"{i}" * 64, i)
        assert cache.size() == 3
        assert cache.clean() == 3
        assert cache.size() == 0
        assert cache.clean() == 0  # idempotent


def _write_package(root: Path, files):
    for name, body in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)


class TestSourceHash:
    def test_module_file_resolution(self):
        assert module_file("repro").name == "__init__.py"
        assert module_file("repro.runner.cache").name == "cache.py"
        assert module_file("repro.graphs").name == "__init__.py"
        assert module_file("json") is None
        assert module_file("repro.no_such_module") is None

    def test_closure_follows_intra_package_imports(self, tmp_path):
        _write_package(tmp_path, {
            "__init__.py": "",
            "a.py": "from .b import thing\nimport json\n",
            "b.py": "from repro.c import other\n",
            "c.py": "x = 1\n",
            "d.py": "unrelated = True\n",
        })
        closure = module_closure(["repro.a"], root=tmp_path)
        assert set(closure) == {"repro.a", "repro.b", "repro.c"}

    def test_hash_changes_only_with_relevant_edits(self, tmp_path):
        files = {
            "__init__.py": "",
            "a.py": "from .b import thing\n",
            "b.py": "thing = 1\n",
            "d.py": "unrelated = True\n",
        }
        _write_package(tmp_path, files)
        before = source_hash(["repro.a"], root=tmp_path)
        assert before == source_hash(["repro.a"], root=tmp_path)  # stable

        (tmp_path / "d.py").write_text("unrelated = False\n")
        assert source_hash(["repro.a"], root=tmp_path) == before

        (tmp_path / "b.py").write_text("thing = 2\n")
        assert source_hash(["repro.a"], root=tmp_path) != before

    def test_relative_imports_resolve(self, tmp_path):
        _write_package(tmp_path, {
            "__init__.py": "",
            "pkg/__init__.py": "",
            "pkg/mod.py": "from ..util import helper\n",
            "util.py": "def helper(): pass\n",
        })
        closure = module_closure(["repro.pkg.mod"], root=tmp_path)
        assert "repro.util" in closure

    def test_real_experiment_deps_have_disjoint_sensitivity(self):
        # editing the lower-bound module must not invalidate T3's key
        t3 = module_closure(["repro.coloring"])
        assert not any(name.startswith("repro.lowerbounds") for name in t3)
        t9 = module_closure(["repro.lowerbounds"])
        assert not any(name.startswith("repro.coloring") for name in t9)
