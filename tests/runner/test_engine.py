"""The parallel executor: determinism, isolation, caching, logging."""

import json

import pytest

from repro.runner import (
    ResultCache,
    plan_cells,
    run_bench,
    run_cells,
    run_experiments,
    write_jsonl,
)
from repro.runner.engine import execute_cell
from repro.runner.registry import CellSpec

#: shrunken sweeps so the whole module runs in seconds
SMALL = {
    "T3": {"eps_values": (1.0,), "n": 30, "seeds": (0, 1)},
    "L6": {"ns": (30, 60)},
    "T9": {"r_values": (4, 8), "n": 400, "trials": 2},
}


class TestExecuteCell:
    def test_ok_envelope(self):
        status, value, error, elapsed = execute_cell(
            "L6", "l6_cell", {"n": 30, "family": "chordal", "seed": 0}
        )
        assert status == "ok" and error is None
        assert value["layers"] >= 1 and elapsed >= 0

    def test_raising_cell_is_contained(self):
        status, value, error, _ = execute_cell(
            "T3", "t3_cell", {"family": "no-such-family", "eps": 1.0, "n": 10, "seed": 0}
        )
        assert status == "failed" and value is None
        assert "KeyError" in error

    def test_unknown_fn_is_contained(self):
        status, _, error, _ = execute_cell("T3", "no_such_cell", {})
        assert status == "failed" and "no_such_cell" in error

    def test_timeout_interrupts_a_hanging_cell(self):
        status, value, error, elapsed = execute_cell(
            "T3", "_sleep_cell", {"seconds": 30.0}, timeout=0.2
        )
        assert status == "timeout" and value is None
        assert "timeout" in error
        assert elapsed < 5.0


class TestRunCells:
    def test_results_in_plan_order(self):
        specs = plan_cells(["L6"], overrides=SMALL)
        results, stats = run_cells(specs, jobs=1)
        assert [r.params["n"] for r in results] == [30, 60]
        assert stats.cells == 2 and stats.ok == 2

    def test_parallel_equals_serial(self):
        specs = plan_cells(["T3"], overrides=SMALL)
        serial, _ = run_cells(specs, jobs=1)
        parallel, _ = run_cells(specs, jobs=4)
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert [r.params for r in serial] == [r.params for r in parallel]

    def test_failed_cell_does_not_kill_the_sweep(self):
        specs = [
            CellSpec("L6", "l6_cell", {"n": 30, "family": "chordal", "seed": 0}),
            CellSpec("L6", "l6_cell", {"n": 40, "family": "no-such", "seed": 0}),
            CellSpec("L6", "l6_cell", {"n": 50, "family": "chordal", "seed": 0}),
        ]
        for jobs in (1, 3):
            results, stats = run_cells(specs, jobs=jobs)
            assert [r.status for r in results] == ["ok", "failed", "ok"]
            assert stats.ok == 2 and stats.failed == 1

    def test_hard_crash_is_isolated_even_for_a_single_pending_cell(self):
        # Regression: `jobs == 1 or len(pending) <= 1` used to run a lone
        # pending cell in-process even with jobs > 1, so an os._exit cell
        # killed the whole sweep (pytest included) instead of settling a
        # `failed` envelope.
        specs = [CellSpec("L6", "_exit_cell", {"code": 13})]
        results, stats = run_cells(specs, jobs=2)
        assert [r.status for r in results] == ["failed"]
        assert "worker crashed" in results[0].error
        assert stats.failed == 1

    def test_hard_crash_mid_sweep_settles_and_neighbors_survive(self):
        specs = [
            CellSpec("L6", "l6_cell", {"n": 30, "family": "chordal", "seed": 0}),
            CellSpec("L6", "_exit_cell", {"code": 13}),
            CellSpec("L6", "l6_cell", {"n": 50, "family": "chordal", "seed": 0}),
        ]
        results, stats = run_cells(specs, jobs=3)
        statuses = [r.status for r in results]
        assert statuses[1] == "failed" and "worker crashed" in results[1].error
        # BrokenProcessPool may take innocent bystanders down with the
        # crashing worker, but every cell must settle to *some* envelope.
        assert len(results) == 3 and stats.cells == 3

    def test_on_result_sees_every_cell(self):
        specs = plan_cells(["L6"], overrides=SMALL)
        seen = []
        run_cells(specs, jobs=2, on_result=seen.append)
        assert sorted(r.params["n"] for r in seen) == [30, 60]


class TestCachingRuns:
    def test_second_invocation_is_at_least_90_percent_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        report1, _, cold = run_experiments(
            ["T3", "L6"], jobs=1, cache=cache, overrides=SMALL
        )
        assert cold.cache_hits == 0
        report2, _, warm = run_experiments(
            ["T3", "L6"], jobs=1, cache=cache, overrides=SMALL
        )
        assert report2 == report1
        assert warm.cache_hit_rate >= 0.9

    def test_parallel_warm_run_matches_serial_cold_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold, _, _ = run_experiments(["T9"], jobs=1, cache=cache, overrides=SMALL)
        warm, _, stats = run_experiments(["T9"], jobs=2, cache=cache, overrides=SMALL)
        assert warm == cold and stats.cache_hit_rate == 1.0

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [CellSpec("L6", "l6_cell", {"n": 30, "family": "no-such", "seed": 0})]
        run_cells(specs, jobs=1, cache=cache)
        assert cache.size() == 0

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiments(["L6"], jobs=1, cache=cache, overrides=SMALL)
        _, _, stats = run_experiments(
            ["L6"], jobs=1, cache=cache, overrides={"L6": {"ns": (31, 61)}}
        )
        assert stats.cache_hits == 0


class TestLogsAndBench:
    def test_jsonl_schema(self, tmp_path):
        specs = plan_cells(["L6"], overrides=SMALL)
        results, _ = run_cells(specs, jobs=1)
        path = tmp_path / "cells.jsonl"
        write_jsonl(str(path), results)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == len(specs)
        for line in lines:
            assert set(line) == {
                "experiment", "fn", "params", "status", "value",
                "error", "elapsed", "cached",
            }
            assert line["status"] == "ok"

    def test_run_bench_summary(self):
        summary = run_bench(["L6"], jobs=2, overrides=SMALL)
        assert summary["reports_identical"] is True
        assert summary["cells"] == 2
        assert summary["serial"]["wall_seconds"] > 0
        assert summary["parallel"]["cache_hits"] == 0
        assert summary["cached_rerun"]["cache_hit_rate"] == 1.0
        quiet = summary["scheduler"]["quiet_convergecast"]
        assert quiet["outputs_identical"] is True
        assert quiet["speedup_active_over_dense"] > 1.0

    def test_scheduler_bench_compares_identical_outputs(self):
        from repro.runner import scheduler_bench

        section = scheduler_bench(quiet_n=120, busy_n=60, seed=1)
        assert set(section) == {"quiet_convergecast", "busy_luby"}
        for entry in section.values():
            assert entry["outputs_identical"] is True
            assert entry["active_seconds"] > 0
            assert entry["dense_seconds"] > 0
