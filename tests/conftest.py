"""Shared fixtures and helpers for the test-suite.

``networkx`` is used throughout the tests as an independent oracle for
chordality, cliques, and small exact optima; the library itself never
imports it.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graphs import Graph


def to_networkx(graph: Graph) -> "nx.Graph":
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


def from_networkx(g: "nx.Graph") -> Graph:
    return Graph(vertices=g.nodes(), edges=g.edges())


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
