"""Power-law shape assertions across the experiment sweeps.

Fits measured series to y ~ c x^b and asserts the exponent matches the
theory: rounds linear in k (Theorem 4's 1/eps axis), lower-bound loss
inverse in r (Theorem 9), and near-flat rounds in n for the interval MIS
(Theorem 6's log* n).
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.fitting import power_law_exponent
from repro.coloring import distributed_color_chordal
from repro.graphs import path_graph, random_tree
from repro.lowerbounds import measure_r_round_mis
from repro.mis import interval_mis


def test_mvc_rounds_linear_in_k(benchmark):
    g = random_tree(300, seed=5)

    def sweep():
        ks = [1, 2, 4, 8, 16]
        rounds = [distributed_color_chordal(g, k=k).total_rounds for k in ks]
        return ks, rounds

    ks, rounds = run_once(benchmark, sweep)
    exponent = power_law_exponent(ks, rounds)
    assert 0.3 <= exponent <= 1.2, f"rounds ~ k^{exponent:.2f}"
    benchmark.extra_info["exponent"] = round(exponent, 3)


def test_lower_bound_gap_inverse_in_r(benchmark):
    def sweep():
        rs = [4, 8, 16, 32, 64, 128]
        gaps = [
            measure_r_round_mis(4000, r, trials=6, seed=1).density_gap for r in rs
        ]
        return rs, gaps

    rs, gaps = run_once(benchmark, sweep)
    exponent = power_law_exponent(rs, gaps)
    assert -1.25 <= exponent <= -0.7, f"gap ~ r^{exponent:.2f}"
    benchmark.extra_info["exponent"] = round(exponent, 3)


def test_interval_mis_rounds_sublinear_in_n(benchmark):
    def sweep():
        ns = [200, 800, 3200]
        rounds = [interval_mis(path_graph(n), 0.3).rounds for n in ns]
        return ns, rounds

    ns, rounds = run_once(benchmark, sweep)
    exponent = power_law_exponent(ns, rounds)
    assert exponent <= 0.25, f"rounds ~ n^{exponent:.2f} (should be ~log*)"
    benchmark.extra_info["exponent"] = round(exponent, 3)
