"""Experiments T5/T6 (Theorems 5-6): interval MIS approximation and rounds."""

import pytest

from benchmarks.conftest import run_once
from repro.graphs import is_independent_set, unit_interval_chain
from repro.localmodel import log_star
from repro.mis import independence_number_chordal, interval_mis


@pytest.mark.parametrize("eps", [0.8, 0.4, 0.2])
def test_interval_mis_ratio(benchmark, eps):
    g = unit_interval_chain(400, seed=4)
    result = run_once(benchmark, interval_mis, g, eps)
    assert is_independent_set(g, result.independent_set)
    alpha = independence_number_chordal(g)
    assert result.size() * (1 + eps) >= alpha
    benchmark.extra_info.update(
        {
            "eps": eps,
            "alpha": alpha,
            "size": result.size(),
            "ratio": round(alpha / max(1, result.size()), 4),
            "rounds": result.rounds,
        }
    )


@pytest.mark.parametrize("n", [200, 800, 3200])
def test_interval_mis_rounds_log_star(benchmark, n):
    """Rounds grow like log* n at fixed eps: essentially flat in n."""
    from repro.graphs import path_graph

    g = path_graph(n)
    result = run_once(benchmark, interval_mis, g, 0.3)
    assert result.size() * 1.3 >= (n + 1) // 2
    k_factor = 10  # k = ceil(2.5/0.3 + 0.5) = 9
    assert result.rounds <= 40 * k_factor * (log_star(n) + 3)
    benchmark.extra_info.update({"n": n, "rounds": result.rounds})
