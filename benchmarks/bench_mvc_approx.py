"""Experiment T3 (Theorem 3): Algorithm 1's approximation factor.

For every graph family and eps, the measured number of colors must stay
within floor((1 + 1/k) chi) + 1, and within (1 + eps) chi whenever
eps > 2/chi.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis import GRAPH_FAMILIES
from repro.coloring import color_chordal_graph
from repro.graphs import is_proper_coloring


@pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
@pytest.mark.parametrize("eps", [1.0, 0.5, 0.25])
def test_mvc_approximation(benchmark, family, eps):
    g = GRAPH_FAMILIES[family](150, 0)
    result = run_once(benchmark, color_chordal_graph, g, epsilon=eps)
    assert is_proper_coloring(g, result.coloring)
    chi = result.chi
    k = result.parameters.k
    assert result.num_colors() <= chi + chi // k + 1
    if eps > 2.0 / max(1, chi):
        assert result.num_colors() <= (1 + eps) * chi
    benchmark.extra_info.update(
        {
            "family": family,
            "eps": eps,
            "chi": chi,
            "colors": result.num_colors(),
            "ratio": round(result.approximation_ratio(), 4),
            "layers": result.peeling.num_layers(),
        }
    )
