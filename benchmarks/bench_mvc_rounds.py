"""Experiment T4 (Theorem 4): distributed MVC runs in O((1/eps) log n) rounds.

Two sweeps: rounds vs n at fixed eps (growth must track the layer count,
i.e. log n, times the per-iteration k cost), and rounds vs 1/eps at fixed
n (growth must be at most linear in k).
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.coloring import distributed_color_chordal
from repro.graphs import random_tree


@pytest.mark.parametrize("n", [100, 400, 1600])
def test_rounds_vs_n(benchmark, n):
    g = random_tree(n, seed=1)
    report = run_once(benchmark, distributed_color_chordal, g, epsilon=1.0)
    k = report.result.parameters.k
    layers = report.result.peeling.num_layers()
    assert layers <= math.ceil(math.log2(n)) + 1
    # rounds = layers * collect + coloring + correction chain: O(k log n)
    per_iteration = report.result.parameters.collect_radius
    bound = (layers + 2) * (per_iteration + 60 * k + 40)
    assert report.total_rounds <= bound
    benchmark.extra_info.update(
        {"n": n, "layers": layers, "rounds": report.total_rounds}
    )


@pytest.mark.parametrize("eps", [2.0, 1.0, 0.5, 0.25])
def test_rounds_vs_epsilon(benchmark, eps):
    g = random_tree(400, seed=2)
    report = run_once(benchmark, distributed_color_chordal, g, epsilon=eps)
    k = report.result.parameters.k
    layers = report.result.peeling.num_layers()
    # linear in k at fixed n (log n layers fixed-ish)
    assert report.total_rounds <= 80 * k * (layers + 2) + 500
    benchmark.extra_info.update(
        {"eps": eps, "k": k, "rounds": report.total_rounds, "layers": layers}
    )
