"""Timing + acceptance benchmark for the conformance/bandwidth toolchain.

Produces ``BENCH_lint.json``: wall-clocks for every stage of the
``repro.lint`` pipeline (module loading, the L1-L6 AST pass, the L7-L9
dataflow/bandwidth pass, the shadow-execution sanitize suite) plus the
meter's runtime overhead, and the acceptance facts CI asserts with
``--check``:

* the repro package is clean modulo ``tools/lint_baseline.json``;
* every stock program's certificate matches the pinned class table;
* the shadow suite passes every stock program and still catches the
  planted order-dependent fixture;
* metering a run costs less than a fixed multiple of the bare run.

Like ``bench_kernels.py`` this is a standalone script, not a
pytest-benchmark module, because its artifact is the committed JSON:

    PYTHONPATH=src python benchmarks/bench_lint.py                  # full run
    PYTHONPATH=src python benchmarks/bench_lint.py --quick --check  # CI smoke

``--quick`` shrinks the shadow suite to one seed and skips the repeated
timing passes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OUT_PATH = REPO_ROOT / "BENCH_lint.json"
BASELINE_PATH = REPO_ROOT / "tools" / "lint_baseline.json"
FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures" / "bandwidth_programs.py"

#: the pinned certificate table (program -> (class, horizon)); a change
#: here is a deliberate certifier change, not drift
EXPECTED_CLASSES = {
    "BFSLayerProgram": ("const", None),
    "LeaderElectionProgram": ("const", None),
    "EchoCountProgram": ("const", None),
    "BallGatherProgram": ("ball", "radius"),
    "LinialPathProgram": ("const", None),
    "LubyMISProgram": ("const", None),
    "RandomizedColoringProgram": ("const", None),
}

#: metering must cost less than this per message (the sink serializes
#: every payload, so the bound is absolute per-message, not a ratio
#: against the near-zero cost of a bare tiny-payload run)
METER_COST_LIMIT_US = 500.0


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def bench_static(rows: List[dict]) -> Dict[str, Any]:
    from repro.lint import (
        active_findings,
        analyze_modules,
        apply_baseline,
        certificates_for_modules,
        load_baseline,
        load_modules,
    )

    package = REPO_ROOT / "src" / "repro"
    modules, t_load = _timed(load_modules, [package])
    rows.append({"stage": "load_modules", "seconds": round(t_load, 6)})

    findings, t_analyze = _timed(analyze_modules, modules)
    rows.append({"stage": "analyze_modules(L1-L9)", "seconds": round(t_analyze, 6)})

    certs, t_certs = _timed(certificates_for_modules, modules)
    rows.append({"stage": "certificates", "seconds": round(t_certs, 6)})

    remaining, baselined, unused = apply_baseline(
        active_findings(findings), load_baseline(BASELINE_PATH)
    )
    cert_map = {c.program: (c.message_class, c.horizon) for c in certs}
    fixture_certs = {
        c.program: c.message_class
        for c in certificates_for_modules(load_modules([FIXTURES]))
    }
    return {
        "modules": len(modules),
        "findings": len(findings),
        "unexcused_findings": len(remaining),
        "baselined_findings": len(baselined),
        "unused_baseline_entries": len(unused),
        "certificates": len(certs),
        "certificate_table_matches": all(
            cert_map.get(prog) == expected
            for prog, expected in EXPECTED_CLASSES.items()
        ),
        "planted_fixture_is_unbounded": (
            fixture_certs.get("EndlessFloodProgram") == "unbounded"
        ),
    }


def bench_sanitize(rows: List[dict], quick: bool) -> Dict[str, Any]:
    from repro.graphs import cycle_graph
    from repro.lint.cli import _sanitize_suite
    from repro.localmodel import shadow_check

    seeds = (1,) if quick else (1, 2, 3)
    failures = []
    total = 0.0
    for name, graph, factory in _sanitize_suite():
        report, t = _timed(shadow_check, graph, factory, seeds=seeds)
        rows.append({"stage": f"shadow:{name}", "seconds": round(t, 6)})
        total += t
        if not report.deterministic:
            failures.append(name)

    # the planted fixture must still be caught
    sys.path.insert(0, str(FIXTURES.parent))
    try:
        from bandwidth_programs import GossipOrderProgram
    finally:
        sys.path.pop(0)
    planted, t = _timed(shadow_check, cycle_graph(8), GossipOrderProgram, seeds=seeds)
    rows.append({"stage": "shadow:planted-fixture", "seconds": round(t, 6)})
    return {
        "programs": len(_sanitize_suite()),
        "seeds": list(seeds),
        "false_positives": failures,
        "planted_fixture_caught": not planted.deterministic,
        "total_seconds": round(total, 6),
    }


def bench_meter(rows: List[dict], quick: bool) -> Dict[str, Any]:
    from repro.graphs import cycle_graph
    from repro.localmodel import BallGatherProgram, MessageMeter, SyncNetwork

    n = 32 if quick else 128
    radius = 4
    factory = lambda v, nbrs: BallGatherProgram(v, nbrs, radius, ("s", v))

    def bare():
        return SyncNetwork(cycle_graph(n), factory).run()

    def metered():
        meter = MessageMeter()
        SyncNetwork(cycle_graph(n), factory, sinks=[meter]).run()
        return meter

    bare(), metered()  # warm up
    _, t_bare = _timed(bare)
    meter, t_metered = _timed(metered)
    rows.append({"stage": "run:bare", "seconds": round(t_bare, 6)})
    rows.append({"stage": "run:metered", "seconds": round(t_metered, 6)})
    messages = sum(r["messages"] for r in meter.per_round)
    cost_us = (
        (t_metered - t_bare) / messages * 1e6 if messages else None
    )
    return {
        "n": n,
        "radius": radius,
        "messages": messages,
        "max_payload_words": meter.max_payload_words,
        "meter_cost_us_per_message": (
            round(cost_us, 2) if cost_us is not None else None
        ),
    }


def run(quick: bool) -> dict:
    rows: List[dict] = []
    static = bench_static(rows)
    sanitize = bench_sanitize(rows, quick)
    meter = bench_meter(rows, quick)
    for row in rows:
        print(f"  {row['stage']:<28} {row['seconds']:.4f}s")
    return {
        "benchmark": "repro.lint",
        "quick": quick,
        "rows": rows,
        "static": static,
        "sanitize": sanitize,
        "meter": meter,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless every acceptance fact above holds",
    )
    parser.add_argument("--out", type=Path, default=None, help="JSON output path")
    args = parser.parse_args(argv)

    payload = run(quick=args.quick)

    if args.check:
        problems = []
        static = payload["static"]
        if static["unexcused_findings"]:
            problems.append(
                f"{static['unexcused_findings']} finding(s) not excused by "
                "the baseline"
            )
        if static["unused_baseline_entries"]:
            problems.append("baseline has unused entries")
        if not static["certificate_table_matches"]:
            problems.append("certificate table drifted from the pinned classes")
        if not static["planted_fixture_is_unbounded"]:
            problems.append("EndlessFloodProgram no longer certifies unbounded")
        sanitize = payload["sanitize"]
        if sanitize["false_positives"]:
            problems.append(
                "shadow suite flagged stock programs: "
                + ", ".join(sanitize["false_positives"])
            )
        if not sanitize["planted_fixture_caught"]:
            problems.append("shadow suite missed the planted fixture")
        cost = payload["meter"]["meter_cost_us_per_message"]
        if cost is not None and cost > METER_COST_LIMIT_US:
            problems.append(
                f"metering costs {cost}us/message, over {METER_COST_LIMIT_US}us"
            )
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        print("check passed: clean modulo baseline, certificates pinned, "
              "shadow suite sound, meter overhead bounded")

    out = args.out
    if out is None and not args.quick:
        out = OUT_PATH
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
