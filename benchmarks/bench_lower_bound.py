"""Experiment T9 (Theorem 9): the Omega(1/eps) round lower bound for MIS."""

import pytest

from benchmarks.conftest import run_once
from repro.lowerbounds import measure_r_round_mis


@pytest.mark.parametrize("r", [4, 16, 64])
def test_lower_bound_density_gap(benchmark, r):
    sample = run_once(benchmark, measure_r_round_mis, 4000, r, 6, 7)
    # the r-round rule loses Theta(1/r) density: between 0.2/r and 2/r here
    assert 0.2 / r <= sample.density_gap <= 2.0 / r
    benchmark.extra_info.update(
        {
            "r": r,
            "gap": round(sample.density_gap, 5),
            "r_x_gap": round(r * sample.density_gap, 3),
            "ratio": round(sample.approximation_ratio, 4),
        }
    )


def test_gap_halves_when_r_quadruples(benchmark):
    def sweep():
        return [
            measure_r_round_mis(4000, r, trials=6, seed=3).density_gap
            for r in (8, 32, 128)
        ]

    gaps = run_once(benchmark, sweep)
    assert gaps[0] > gaps[1] > gaps[2]
    assert gaps[1] <= gaps[0] / 1.8
    assert gaps[2] <= gaps[1] / 1.8
    benchmark.extra_info["gaps"] = [round(g, 5) for g in gaps]
