"""Benchmark-suite configuration.

Every benchmark reproduces one experiment of DESIGN.md's per-experiment
index and asserts the paper-shaped property (approximation bound, round
scaling, structural identity) in addition to timing the run.  Key measured
quantities are attached as ``benchmark.extra_info`` so they appear in the
pytest-benchmark JSON output.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single warm run (experiments are deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: shrunken sweeps shared by the engine benchmarks (seconds, not minutes)
RUNNER_SMALL_OVERRIDES = {
    "T3": {"eps_values": (1.0, 0.5), "n": 60, "seeds": (0, 1)},
    "T9": {"r_values": (4, 8, 16), "n": 800, "trials": 3},
    "L6": {"ns": (50, 100, 200)},
}

RUNNER_SMALL_IDS = list(RUNNER_SMALL_OVERRIDES)


@pytest.fixture
def runner_cache(tmp_path):
    """A fresh, isolated on-disk result cache for one benchmark."""
    from repro.runner import ResultCache

    return ResultCache(tmp_path / "runner-cache")
