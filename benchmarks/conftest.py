"""Benchmark-suite configuration.

Every benchmark reproduces one experiment of DESIGN.md's per-experiment
index and asserts the paper-shaped property (approximation bound, round
scaling, structural identity) in addition to timing the run.  Key measured
quantities are attached as ``benchmark.extra_info`` so they appear in the
pytest-benchmark JSON output.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single warm run (experiments are deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
