"""Timing + acceptance benchmark for the self-stabilization layer.

Produces ``BENCH_chaos.json``: wall-clocks for the chaos soak and the
S1 stabilization matrix, plus the acceptance facts CI asserts with
``--check``:

* every chaos-soak failure delta-debugs to a minimized spec that
  reproduces on replay (the actionability gate);
* the S1 classification of every (program, repaired, kind) cell matches
  the pinned table — repaired programs self-heal under a provably
  violating single-node flip, unrepaired ones are unsafe;
* crash-recover with a round-1 checkpoint cadence finishes in strictly
  fewer rounds than a round-0 restart (checkpoints actually save work).

Like ``bench_faults.py`` this is a standalone script, not a
pytest-benchmark module, because its artifact is the committed JSON:

    PYTHONPATH=src python benchmarks/bench_chaos.py                  # full run
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick --check  # CI smoke

``--quick`` shrinks the trial count and the recovery workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OUT_PATH = REPO_ROOT / "BENCH_chaos.json"

#: the pinned S1 stabilization table (n=14, seed=0); a change here is a
#: deliberate repair-semantics change, not drift
EXPECTED_S1 = {
    ("coloring", False, "flip"): "unsafe",
    ("coloring", False, "scramble"): "self-healing",
    ("coloring", True, "flip"): "self-healing",
    ("coloring", True, "scramble"): "self-healing",
    ("mis", False, "flip"): "unsafe",
    ("mis", False, "scramble"): "unsafe",
    ("mis", True, "flip"): "self-healing",
    ("mis", True, "scramble"): "self-healing",
}


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def bench_soak(rows: List[dict], quick: bool) -> Dict[str, Any]:
    """The seeded fuzz soak over the quick suite, repro-gated."""
    from repro.cli import CHAOS_QUICK_PROGRAMS, _faults_suite
    from repro.localmodel.chaos import chaos_soak

    trials = 25 if quick else 100
    suite = [e for e in _faults_suite() if e[0] in CHAOS_QUICK_PROGRAMS]
    report, t = _timed(chaos_soak, suite, trials=trials, seed=0)
    rows.append({"stage": f"soak:{trials}-trials", "seconds": round(t, 6)})
    summary = report.summary()
    failures = report.failures()
    return {
        "programs": [e[0] for e in suite],
        "trials": summary["trials"],
        "failures": summary["failures"],
        "by_kind": summary["by_kind"],
        "by_program": summary["by_program"],
        "minimized": summary["minimized"],
        "reproduced": summary["reproduced"],
        "all_reproduce": all(f.reproduces for f in failures),
        "seconds": round(t, 6),
    }


def bench_stabilization(rows: List[dict]) -> Dict[str, Any]:
    """The S1 matrix: one violating corruption per (program, repaired, kind)."""
    from repro.runner.cells import s1_cell

    cells: Dict[str, str] = {}
    drift = []
    total = 0.0
    for (program, repaired, kind), expected in EXPECTED_S1.items():
        payload, t = _timed(
            s1_cell, program=program, repaired=repaired, kind=kind, n=14, seed=0
        )
        total += t
        key = f"{program}:{'repaired' if repaired else 'plain'}:{kind}"
        cells[key] = payload["classification"]
        if payload["classification"] != expected:
            drift.append(
                f"{key}: {payload['classification']}, pinned {expected}"
            )
    rows.append({"stage": "stabilization:matrix", "seconds": round(total, 6)})
    return {
        "cells": cells,
        "table_matches": not drift,
        "drift": drift,
        "total_seconds": round(total, 6),
    }


def counter_factory(target):
    """Pure internal progress: checkpoint savings are directly visible.

    Message-driven programs rebuild lost state from their neighbors, so
    a restart costs them little; a counter makes the rework explicit —
    a restarted node repeats every counted round, a checkpointed one
    repeats only the rounds since its last snapshot.
    """
    from repro.localmodel import NodeProgram

    class Counter(NodeProgram):
        always_active = True

        def __init__(self, node, neighbors):
            super().__init__(node, neighbors)
            self.count = 0

        def step(self, ctx):
            self.count += 1
            if self.count >= target:
                self.output = self.count
                self.done = True
            return {}

    return lambda v, nbrs: Counter(v, nbrs)


def bench_recovery(rows: List[dict], quick: bool) -> Dict[str, Any]:
    """Checkpointed crash-recover versus a round-0 restart."""
    from repro.graphs import path_graph
    from repro.localmodel import FaultPlan, SyncNetwork

    target = 12 if quick else 60
    crash_at = target // 3
    graph = path_graph(5)
    plan = FaultPlan.parse(f"crash=1@{crash_at}-{crash_at + 2}")
    results: Dict[str, int] = {}
    for mode, cadence in (("restart", None), ("checkpoint", 1)):
        def run():
            net = SyncNetwork(
                graph,
                counter_factory(target),
                faults=plan,
                recovery=mode,
                checkpoint_every=cadence,
            )
            net.run(max_rounds=20 * target)
            return net.stats.rounds

        rounds, t = _timed(run)
        results[mode] = rounds
        rows.append({"stage": f"recovery:{mode}", "seconds": round(t, 6)})
    return {
        "workload": f"counter target {target} on P_5, crash {plan.spec()}",
        "restart_rounds": results["restart"],
        "checkpoint_rounds": results["checkpoint"],
        "checkpoint_beats_restart": results["checkpoint"] < results["restart"],
    }


def run(quick: bool) -> dict:
    rows: List[dict] = []
    soak = bench_soak(rows, quick)
    stabilization = bench_stabilization(rows)
    recovery = bench_recovery(rows, quick)
    for row in rows:
        print(f"  {row['stage']:<28} {row['seconds']:.4f}s")
    return {
        "benchmark": "repro.localmodel.stabilize+chaos",
        "quick": quick,
        "rows": rows,
        "soak": soak,
        "stabilization": stabilization,
        "recovery": recovery,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless every acceptance fact above holds",
    )
    parser.add_argument("--out", type=Path, default=None, help="JSON output path")
    args = parser.parse_args(argv)

    payload = run(quick=args.quick)

    if args.check:
        problems = []
        soak = payload["soak"]
        if not soak["all_reproduce"]:
            unreproduced = soak["failures"] - soak["reproduced"]
            problems.append(
                f"{unreproduced} soak failure(s) lack a reproducing "
                "minimized spec"
            )
        stabilization = payload["stabilization"]
        if not stabilization["table_matches"]:
            problems.append(
                "S1 classification drifted from the pinned table: "
                + "; ".join(stabilization["drift"])
            )
        recovery = payload["recovery"]
        if not recovery["checkpoint_beats_restart"]:
            problems.append(
                f"checkpointed recovery ({recovery['checkpoint_rounds']} "
                f"rounds) does not beat restart "
                f"({recovery['restart_rounds']} rounds)"
            )
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        print(
            "check passed: soak failures reproduce, S1 table pinned, "
            "checkpoints beat restarts"
        )

    out = args.out
    if out is None and not args.quick:
        out = OUT_PATH
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
