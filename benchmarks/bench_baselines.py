"""Experiment B1: the (1 + eps) algorithms vs the classic baselines.

The paper's introduction motivates the work by the gap between maximal
independent sets / (Delta + 1) colorings (fast, far from optimal) and the
(1 + eps)-approximations it constructs.  These benchmarks measure both
sides on the same graphs.
"""

import pytest

from benchmarks.conftest import run_once
from repro.baselines import luby_mis, sequential_greedy_coloring
from repro.coloring import color_chordal_graph
from repro.graphs import caterpillar, num_colors, path_graph, random_chordal_graph
from repro.mis import chordal_mis, independence_number_chordal


def test_luby_vs_algorithm6_on_paths(benchmark):
    """On long paths Luby lands near 2n/3 points of n/2... of the optimum
    n/2, while Algorithm 6 gets within (1 + eps)."""
    g = path_graph(1001)

    def both():
        ours = chordal_mis(g, 0.3).size()
        theirs = len(luby_mis(g, seed=0)[0])
        return ours, theirs

    ours, theirs = run_once(benchmark, both)
    optimum = 501
    assert ours * 1.3 >= optimum
    assert theirs < ours  # the gap the paper closes
    benchmark.extra_info.update(
        {"ours": ours, "luby": theirs, "optimum": optimum}
    )


def test_greedy_coloring_vs_algorithm1(benchmark):
    """Adversarial orders push greedy above chi; Algorithm 1 stays at
    (1 + eps) chi by construction."""
    g = random_chordal_graph(200, seed=5, tree_size=200)

    def both():
        ours = color_chordal_graph(g, epsilon=0.5).num_colors()
        # adversarial order: descending degree last (greedy worst-ish case)
        order = sorted(g.vertices(), key=lambda v: g.degree(v))
        theirs = num_colors(sequential_greedy_coloring(g, order=order))
        return ours, theirs

    ours, theirs = run_once(benchmark, both)
    from repro.graphs import clique_number

    chi = clique_number(g)
    assert ours <= 1.5 * chi
    benchmark.extra_info.update({"chi": chi, "ours": ours, "greedy": theirs})


def test_luby_round_count(benchmark):
    g = caterpillar(spine=300, legs_per_vertex=1)
    mis, rounds = run_once(benchmark, luby_mis, g, 1)
    assert rounds >= 1
    benchmark.extra_info.update({"luby_rounds": rounds, "size": len(mis)})
