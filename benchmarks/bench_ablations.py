"""Ablation benchmarks for the design choices DESIGN.md calls out."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.ablations import (
    domination_ablation,
    spares_ablation,
    threshold_ablation,
)


def test_threshold_ablation(benchmark):
    """Smaller internal thresholds never increase the layer count."""
    rows = run_once(benchmark, threshold_ablation)
    layers = [row[2] for row in rows]  # multipliers ascending
    assert all(a <= b for a, b in zip(layers, layers[1:]))
    benchmark.extra_info["rows"] = rows


def test_spares_ablation(benchmark):
    """Relay-cut budget decreases as k shrinks (more spare colors)."""
    rows = run_once(benchmark, spares_ablation)
    by_chi = {}
    for chi, k, palette, spares, cuts in rows:
        by_chi.setdefault(chi, []).append((k, cuts))
    for chi, pairs in by_chi.items():
        pairs.sort()
        cuts = [c for _, c in pairs]
        # cut budget grows (weakly) with k for fixed chi
        assert all(a <= b for a, b in zip(cuts, cuts[1:]))
        # and stays within the worst-case 4k + 5 sizing of the parameters
        for k, c in pairs:
            assert c <= 4 * k + 5
    benchmark.extra_info["rows"] = rows


def test_domination_ablation(benchmark):
    """Random-length instances dissolve under domination removal;
    unit chains survive nearly intact."""
    rows = run_once(benchmark, domination_ablation)
    by_name = {row[0]: row for row in rows}
    random_row = by_name["random lengths"]
    unit_row = by_name["unit chain"]
    # random lengths fragment into many more components than unit chains
    assert random_row[3] > unit_row[3]
    # unit chains keep a long component alive
    assert unit_row[4] >= 20
    benchmark.extra_info["rows"] = rows
