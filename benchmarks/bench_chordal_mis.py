"""Experiments T7/T8 (Theorems 7-8): chordal MIS approximation and rounds."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis import GRAPH_FAMILIES
from repro.graphs import is_independent_set
from repro.mis import chordal_mis, independence_number_chordal


@pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
@pytest.mark.parametrize("eps", [0.45, 0.25])
def test_chordal_mis_ratio(benchmark, family, eps):
    g = GRAPH_FAMILIES[family](150, 1)
    result = run_once(benchmark, chordal_mis, g, eps)
    assert is_independent_set(g, result.independent_set)
    alpha = independence_number_chordal(g)
    assert result.size() * (1 + eps) >= alpha
    assert result.peeling.num_layers() <= result.kappa
    benchmark.extra_info.update(
        {
            "family": family,
            "eps": eps,
            "alpha": alpha,
            "size": result.size(),
            "ratio": round(alpha / max(1, result.size()), 4),
            "rounds": result.rounds,
        }
    )


def test_chordal_mis_stops_after_kappa_layers(benchmark):
    """Only O(log 1/eps) peeling iterations are performed (Section 7)."""
    g = GRAPH_FAMILIES["tree"](2000, 3)
    result = run_once(benchmark, chordal_mis, g, 0.45)
    assert result.peeling.num_layers() <= result.kappa
    benchmark.extra_info.update(
        {"kappa": result.kappa, "layers": result.peeling.num_layers()}
    )
