"""The experiment engine itself: serial vs parallel vs warm cache.

Seeds the repo's bench trajectory for `repro run` (the numbers land in
``BENCH_runner.json`` when run via ``repro run --bench``); here the same
three configurations are timed under pytest-benchmark on shrunken
sweeps, asserting byte-identical tables and full cache reuse.
"""

import time

from benchmarks.conftest import (
    RUNNER_SMALL_IDS,
    RUNNER_SMALL_OVERRIDES,
    run_once,
)
from repro.graphs import path_graph
from repro.localmodel.programs import tree_count
from repro.runner import run_experiments


def test_runner_serial_baseline(benchmark):
    """The jobs=1 in-process path (the legacy serial report's shape)."""
    report, results, stats = run_once(
        benchmark,
        run_experiments,
        RUNNER_SMALL_IDS,
        jobs=1,
        overrides=RUNNER_SMALL_OVERRIDES,
    )
    assert stats.ok == stats.cells and stats.cells > 0
    assert "== T3:" in report and "== L6:" in report
    benchmark.extra_info["cells"] = stats.cells


def test_runner_parallel_is_byte_identical(benchmark):
    """Fan-out over a process pool must not change a byte of output."""
    serial_report, _, _ = run_experiments(
        RUNNER_SMALL_IDS, jobs=1, overrides=RUNNER_SMALL_OVERRIDES
    )
    report, _, stats = run_once(
        benchmark,
        run_experiments,
        RUNNER_SMALL_IDS,
        jobs=4,
        overrides=RUNNER_SMALL_OVERRIDES,
    )
    assert report == serial_report
    assert stats.failed == 0 and stats.timeouts == 0
    benchmark.extra_info["jobs"] = 4


def test_runner_warm_cache(benchmark, runner_cache):
    """A second invocation re-reads every cell from disk (100% hits)."""
    cold_report, _, cold = run_experiments(
        RUNNER_SMALL_IDS, jobs=1, cache=runner_cache,
        overrides=RUNNER_SMALL_OVERRIDES,
    )
    report, _, warm = run_once(
        benchmark,
        run_experiments,
        RUNNER_SMALL_IDS,
        jobs=1,
        cache=runner_cache,
        overrides=RUNNER_SMALL_OVERRIDES,
    )
    assert report == cold_report
    assert warm.cache_hit_rate == 1.0
    benchmark.extra_info["cold_seconds"] = cold.wall_seconds
    benchmark.extra_info["cache_hit_rate"] = warm.cache_hit_rate


def test_scheduler_active_vs_dense_on_quiet_workload(benchmark):
    """The active-set scheduler on the simulator's quietest workload.

    Convergecast on a long path keeps all but ~2 nodes idle per round;
    the benchmark times the active-set run, the dense reference is timed
    once alongside it, and the speedup (measured >100x here, asserted
    conservatively) lands in the saved benchmark record.  Outputs must
    match exactly -- the scheduler is an optimization, not a semantics
    change.
    """
    n = 1000
    g = path_graph(n)

    active_out = run_once(benchmark, tree_count, g, 0, scheduler="active")
    start = time.perf_counter()
    dense_out = tree_count(g, 0, scheduler="dense")
    dense_seconds = time.perf_counter() - start

    assert active_out == dense_out == n
    assert dense_seconds > benchmark.stats["mean"] * 10
    benchmark.extra_info["vertices"] = n
    benchmark.extra_info["dense_seconds"] = dense_seconds
    benchmark.extra_info["speedup_over_dense"] = (
        dense_seconds / benchmark.stats["mean"]
    )
