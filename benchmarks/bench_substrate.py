"""Substrate microbenchmarks: the primitives everything else builds on.

Not tied to a single paper claim; they keep the library honest about the
asymptotics of its own machinery (LexBFS, maximal cliques, clique forest
construction, local views, Linial coloring) so regressions in the
foundations show up before they distort the experiment tables.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cliquetree import build_clique_forest, compute_local_view
from repro.graphs import (
    lex_bfs,
    maximal_cliques,
    perfect_elimination_ordering,
    random_chordal_graph,
    triangulate,
)
from repro.localmodel import three_color_path


@pytest.mark.parametrize("n", [200, 800])
def test_lexbfs(benchmark, n):
    g = random_chordal_graph(n, seed=1, tree_size=n)
    order = run_once(benchmark, lex_bfs, g)
    assert len(order) == len(g)


@pytest.mark.parametrize("n", [200, 800])
def test_maximal_cliques(benchmark, n):
    g = random_chordal_graph(n, seed=1, tree_size=n)
    cliques = run_once(benchmark, maximal_cliques, g)
    assert 1 <= len(cliques) <= len(g)


@pytest.mark.parametrize("n", [200, 800])
def test_clique_forest(benchmark, n):
    g = random_chordal_graph(n, seed=1, tree_size=n)
    forest = run_once(benchmark, build_clique_forest, g)
    assert forest.is_valid_decomposition(g)


def test_local_view(benchmark):
    g = random_chordal_graph(400, seed=2, tree_size=400)
    v = g.vertices()[0]
    view = run_once(benchmark, compute_local_view, g, v, 6)
    assert view.forest.num_cliques() >= 1


def test_linial_three_coloring(benchmark):
    ids = [i * 7919 % 100_003 for i in range(3000)]
    colors, rounds = run_once(benchmark, three_color_path, ids)
    assert set(colors.values()) <= {1, 2, 3}
    benchmark.extra_info["rounds"] = rounds


def test_min_fill_triangulation(benchmark):
    from tests.graphs.test_triangulation import random_graph

    g = random_graph(80, 0.06, seed=5)
    tri = run_once(benchmark, triangulate, g)
    assert tri.width >= 1
    benchmark.extra_info["fill"] = len(tri.fill_edges)
