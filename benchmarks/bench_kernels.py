"""Legacy vs kernel benchmark for the CSR/bitset chordal kernels.

Produces ``BENCH_kernels.json``: for every (family, n, operation) cell the
legacy implementation and the kernel dispatch are both run, their outputs
asserted identical, and both wall-clocks recorded.  Three comparators
appear for LexBFS:

* ``seed``      -- the pre-kernel implementation this PR replaced
                   (``head.pop(0)`` plus a full rescan of every block per
                   visited vertex, i.e. O(n^2); reproduced verbatim below
                   as the baseline),
* ``reference`` -- the retained ``_reference_*`` label-space
                   implementation (itself repaired to near-linear in this
                   PR, so it understates the win),
* the kernel dispatch through the public API.

Unlike the rest of ``benchmarks/`` this is a standalone script, not a
pytest-benchmark module, because its artifact is the committed JSON:

    PYTHONPATH=src python benchmarks/bench_kernels.py                  # full sweep
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick --check  # CI smoke

``--quick`` shrinks the sweep to one medium workload; ``--check`` exits
nonzero unless every output pair matched and the kernel's total
wall-clock (index build included) beat the legacy total.

Family scoping mirrors the structure of the inputs, not kernel
limitations: random k-trees have hub vertices lying in Theta(n) maximal
cliques, so their weighted clique-intersection graph is superlinearly
dense and the peeling rows use the bounded-degree interval/path families
at large n instead.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.coloring.greedy import _reference_peo_greedy_coloring, peo_greedy_coloring
from repro.coloring.prune import diameter_rule, peel_chordal_graph, peeling_layers
from repro.graphs import chordal
from repro.graphs.adjacency import Graph
from repro.graphs.generators import path_graph, random_k_tree, unit_interval_chain
from repro.graphs.index import GraphIndex, graph_index

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: sizes where legacy and kernel are both run and compared
COMPARE_NS = (1000, 3000, 10000)
#: sizes where only the kernel can finish in reasonable time
KERNEL_ONLY_NS = (30000, 100000)
#: the seed implementation is O(n^2); cap how far it is dragged along
SEED_LEXBFS_MAX_N = 10000
#: peeling compared against the rich reference peel at these sizes
PEEL_COMPARE_NS = (300, 1000)
PEEL_THRESHOLD = 6
PEEL_LARGE_THRESHOLD = 12

FAMILIES: Dict[str, Callable[[int], Graph]] = {
    "ktree3": lambda n: random_k_tree(n, 3, seed=0),
    "interval": lambda n: unit_interval_chain(n, seed=0),
    "path": path_graph,
}

#: families whose clique-intersection graphs stay sparse at large n
PEEL_LARGE_FAMILIES = ("interval", "path")


def seed_lex_bfs(graph: Graph) -> List:
    """The pre-kernel ``lex_bfs`` body, verbatim, as the seed baseline."""
    if len(graph) == 0:
        return []
    verts = graph.vertices()
    blocks: List[List] = [list(verts)]
    order: List = []
    while blocks:
        head = blocks[0]
        v = head.pop(0)
        if not head:
            blocks.pop(0)
        order.append(v)
        nbrs = graph.neighbors(v)
        new_blocks: List[List] = []
        for block in blocks:
            inside = [u for u in block if u in nbrs]
            outside = [u for u in block if u not in nbrs]
            if inside:
                new_blocks.append(inside)
            if outside:
                new_blocks.append(outside)
        blocks = new_blocks
    return order


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def _row(
    rows: List[dict],
    family: str,
    n: int,
    m: int,
    op: str,
    baseline: Optional[str],
    legacy_seconds: Optional[float],
    kernel_seconds: float,
    identical: Optional[bool],
) -> None:
    speedup = (
        round(legacy_seconds / kernel_seconds, 2)
        if legacy_seconds is not None and kernel_seconds > 0
        else None
    )
    rows.append(
        {
            "family": family,
            "n": n,
            "m": m,
            "op": op,
            "baseline": baseline,
            "legacy_seconds": (
                round(legacy_seconds, 6) if legacy_seconds is not None else None
            ),
            "kernel_seconds": round(kernel_seconds, 6),
            "speedup": speedup,
            "identical": identical,
        }
    )
    tag = f"{family} n={n} {op}"
    if legacy_seconds is None:
        print(f"  {tag}: kernel {kernel_seconds:.4f}s")
    else:
        print(
            f"  {tag} [{baseline}]: legacy {legacy_seconds:.4f}s"
            f" kernel {kernel_seconds:.4f}s ({speedup}x, identical={identical})"
        )


def _compare_cell(rows: List[dict], family: str, g: Graph, seed_baseline: bool) -> None:
    """Run every op legacy-vs-kernel on one graph, asserting identity."""
    n = len(g)
    # the kernel side pays the snapshot build once; time it explicitly so
    # per-op rows compare algorithm against algorithm
    _, t_index = _timed(GraphIndex, g)
    idx = graph_index(g)
    m = idx.m
    _row(rows, family, n, m, "index_build", None, None, t_index, None)

    if seed_baseline:
        seed_order, t_seed = _timed(seed_lex_bfs, g)
    k_order, t_k = _timed(chordal.lex_bfs, g)
    ref_order, t_ref = _timed(chordal._reference_lex_bfs, g)
    assert ref_order == k_order
    _row(rows, family, n, m, "lexbfs", "reference", t_ref, t_k, ref_order == k_order)
    if seed_baseline:
        assert seed_order == k_order
        _row(rows, family, n, m, "lexbfs", "seed", t_seed, t_k, seed_order == k_order)

    k_mcs, t_k = _timed(chordal.maximum_cardinality_search, g)
    ref_mcs, t_ref = _timed(chordal._reference_maximum_cardinality_search, g)
    assert ref_mcs == k_mcs
    _row(rows, family, n, m, "mcs", "reference", t_ref, t_k, ref_mcs == k_mcs)

    peo = list(reversed(k_order))
    k_bad, t_k = _timed(chordal.check_peo, g, peo)
    ref_bad, t_ref = _timed(chordal._reference_check_peo, g, peo)
    assert ref_bad == k_bad is None
    _row(rows, family, n, m, "peo_check", "reference", t_ref, t_k, ref_bad == k_bad)

    k_cl, t_k = _timed(chordal.maximal_cliques, g)
    ref_cl, t_ref = _timed(chordal._reference_maximal_cliques, g)
    assert ref_cl == k_cl
    _row(
        rows, family, n, m, "maximal_cliques", "reference", t_ref, t_k, ref_cl == k_cl
    )

    k_col, t_k = _timed(peo_greedy_coloring, g)
    ref_col, t_ref = _timed(_reference_peo_greedy_coloring, g)
    assert list(ref_col.items()) == list(k_col.items())
    _row(rows, family, n, m, "coloring", "reference", t_ref, t_k, ref_col == k_col)

    k_simp, t_k = _timed(chordal.simplicial_vertices, g)
    ref_simp, t_ref = _timed(chordal._reference_simplicial_vertices, g)
    assert ref_simp == k_simp
    _row(rows, family, n, m, "simplicial", "reference", t_ref, t_k, ref_simp == k_simp)


def _peel_compare_cell(
    rows: List[dict], family: str, g: Graph, threshold: int
) -> None:
    n, m = len(g), g.num_edges()
    fast, t_k = _timed(peeling_layers, g, threshold)
    rich, t_ref = _timed(peel_chordal_graph, g, diameter_rule(threshold))
    same = fast.exhausted == rich.exhausted and fast.num_layers() == rich.num_layers()
    for i in range(1, fast.num_layers() + 1):
        same = same and fast.nodes_of_layer(i) == rich.nodes_of_layer(i)
    assert same
    _row(rows, family, n, m, f"peeling(t={threshold})", "reference", t_ref, t_k, same)


def _kernel_only_cell(rows: List[dict], family: str, g: Graph) -> None:
    from repro.graphs import kernels

    n = len(g)
    _, t_index = _timed(GraphIndex, g)
    idx = graph_index(g)
    m = idx.m
    _row(rows, family, n, m, "index_build", None, None, t_index, None)
    order, t = _timed(kernels.lexbfs, idx)
    _row(rows, family, n, m, "lexbfs", None, None, t, None)
    _, t = _timed(kernels.mcs, idx)
    _row(rows, family, n, m, "mcs", None, None, t, None)
    peo = list(reversed(order))
    bad, t = _timed(kernels.check_peo, idx, peo)
    assert bad is None
    _row(rows, family, n, m, "peo_check", None, None, t, None)
    cliques, t = _timed(kernels.maximal_cliques_from_peo, idx, peo)
    _row(rows, family, n, m, "maximal_cliques", None, None, t, None)
    _, t = _timed(kernels.greedy_coloring, idx, peo)
    _row(rows, family, n, m, "coloring", None, None, t, None)
    _, t = _timed(kernels.simplicial_vertex_ids, idx)
    _row(rows, family, n, m, "simplicial", None, None, t, None)
    if family in PEEL_LARGE_FAMILIES:
        (layers, _), t = _timed(
            kernels.peeling_layers, idx, PEEL_LARGE_THRESHOLD, order=peo
        )
        _row(
            rows, family, n, m, f"peeling(t={PEEL_LARGE_THRESHOLD})", None, None, t, None
        )


def run(quick: bool) -> dict:
    rows: List[dict] = []
    compare_ns = (2000,) if quick else COMPARE_NS
    peel_ns = (400,) if quick else PEEL_COMPARE_NS
    peel_threshold = 4 if quick else PEEL_THRESHOLD
    families = ("ktree3", "interval") if quick else tuple(FAMILIES)

    for family in families:
        build = FAMILIES[family]
        for n in compare_ns:
            print(f"== compare {family} n={n}")
            _compare_cell(rows, family, build(n), n <= SEED_LEXBFS_MAX_N)
        for n in peel_ns:
            _peel_compare_cell(rows, family, build(n), peel_threshold)
        if not quick:
            for n in KERNEL_ONLY_NS:
                print(f"== kernel-only {family} n={n}")
                _kernel_only_cell(rows, family, build(n))

    compared = [r for r in rows if r["baseline"] is not None]
    legacy_total = sum(r["legacy_seconds"] for r in compared)
    kernel_total = sum(r["kernel_seconds"] for r in rows)

    def _best(op: str, baseline: str) -> Optional[float]:
        cells = [
            r["speedup"]
            for r in compared
            if r["op"] == op and r["baseline"] == baseline and r["n"] >= 10000
        ]
        return max(cells) if cells else None

    return {
        "benchmark": "repro.graphs.kernels",
        "quick": quick,
        "rows": rows,
        "all_outputs_identical": all(r["identical"] for r in compared),
        "legacy_total_seconds": round(legacy_total, 3),
        "kernel_total_seconds": round(kernel_total, 3),
        "acceptance": {
            "lexbfs_speedup_vs_seed_at_1e4": _best("lexbfs", "seed"),
            "lexbfs_speedup_vs_reference_at_1e4": _best("lexbfs", "reference"),
            "maximal_cliques_speedup_at_1e4": _best("maximal_cliques", "reference"),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless outputs matched and the kernel total won",
    )
    parser.add_argument("--out", type=Path, default=None, help="JSON output path")
    args = parser.parse_args(argv)

    payload = run(quick=args.quick)
    print(
        f"legacy total {payload['legacy_total_seconds']}s,"
        f" kernel total {payload['kernel_total_seconds']}s"
    )

    if args.check:
        if not payload["all_outputs_identical"]:
            print("FAIL: kernel output diverged from legacy output")
            return 1
        if payload["kernel_total_seconds"] > payload["legacy_total_seconds"]:
            print("FAIL: kernel total wall-clock did not beat legacy")
            return 1
        print("check passed: outputs identical, kernel total beat legacy")

    out = args.out
    if out is None and not args.quick:
        out = OUT_PATH
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
