"""Delta vs full-flood benchmark for message-level ball gathering.

Produces ``BENCH_network.json``: for every (family, n, radius) cell the
output-sensitive :class:`~repro.localmodel.gather.DeltaGatherProgram` and
the retained full-flood reference are both run, their per-node
:class:`~repro.localmodel.gather.KnownBall` outputs asserted identical,
and two figures recorded per program --

* **wall-clock**: an uninstrumented run (no sinks attached), timed;
* **fact volume**: a second run under a counting sink that totals the
  facts (state entries + edge tuples) crossing the wire, charged per the
  :data:`~repro.localmodel.network.WIRE_STATUSES` contract.  Facts are
  the encoding-neutral unit: both programs ship (states, edges) payloads,
  so the ratio isolates the algorithmic reduction.

The volume reduction is output-sensitivity made visible: the flood
re-broadcasts entire accumulated balls every round (``r * sum |ball|^2``
-ish), the delta program forwards each fact across each edge at most
once per direction.  Wall-clock tracks volume only where payload work
dominates the synchronous-round harness; the sweep deliberately spans
the three regimes --

* deep radius, sparse balls (``path``, ``interval``): volume wins are
  10-25x, wall-clock is harness-bound and roughly flat;
* radius past ball saturation (``chordal`` n=500, r=12): the flood keeps
  re-flooding full balls while delta has gone quiet -- both volume and
  wall-clock win clearly;
* pure growth burst (``chordal`` n=1000, r=8): every round's fresh set
  is ball-sized, so delta's per-neighbor filtering buys little over one
  shared broadcast; the flood stays ~2x faster in wall-clock here and
  the row is kept as the honest worst case.

The D1 runner family consumes the same primitive at n = 2*10^4; the
``path`` n=20000 row pins that scale in a benchmarked artifact.

Unlike the rest of ``benchmarks/`` this is a standalone script, not a
pytest-benchmark module, because its artifact is the committed JSON:

    PYTHONPATH=src python benchmarks/bench_network.py                  # full sweep
    PYTHONPATH=src python benchmarks/bench_network.py --quick --check  # CI smoke

``--quick`` shrinks the sweep to two small cells; ``--check`` exits
nonzero unless every output pair matched and the acceptance reductions
held (>= 10x at the n=5000 acceptance cell on the full sweep, > 1x on
the quick cells).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.adjacency import Graph, Vertex
from repro.graphs.generators import (
    path_graph,
    random_chordal_graph,
    unit_interval_chain,
)
from repro.graphs.index import graph_index
from repro.localmodel.gather import gather_balls
from repro.localmodel.network import WIRE_STATUSES, MessageRecord, TraceSink

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_network.json"

#: (family, n, radius) cells of the full sweep; radii mirror the pipeline
#: (collect_radius = 10 for MVC at k=1, 15 for MIS at d=1) plus the
#: deep-radius acceptance cell and the saturation/burst chordal cells.
FULL_CELLS: Tuple[Tuple[str, int, int], ...] = (
    ("path", 2000, 10),
    ("path", 5000, 24),
    ("interval", 2000, 10),
    ("interval", 2000, 15),
    ("chordal", 500, 12),
    ("chordal", 1000, 8),
    ("path", 20000, 10),
)

QUICK_CELLS: Tuple[Tuple[str, int, int], ...] = (
    ("path", 400, 12),
    ("interval", 300, 6),
)

#: the acceptance criterion is pinned to this cell
ACCEPTANCE_CELL = ("path", 5000, 24)

FAMILIES: Dict[str, Callable[[int], Graph]] = {
    "path": path_graph,
    "interval": lambda n: unit_interval_chain(n, seed=0),
    "chordal": lambda n: random_chordal_graph(n, seed=7),
}


class FactVolumeSink(TraceSink):
    """Counts facts on the wire: state entries + edges, per charged record.

    Charging follows the wire contract (``WIRE_STATUSES``): dropped and
    delayed payloads crossed the wire, a matured ``"late"`` record is the
    delivery of an already-charged transmission.  On the reliable runs
    here every record is simply ``"delivered"``.
    """

    def __init__(self) -> None:
        self.facts = 0
        self.messages = 0

    def on_round(
        self,
        round_no: int,
        messages: List[MessageRecord],
        completed: List[Vertex],
        active_count: int,
    ) -> None:
        for record in messages:
            if record.status not in WIRE_STATUSES:
                continue
            d_states, d_edges = record.payload
            self.facts += len(d_states) + len(d_edges)
            self.messages += 1


def _timed_gather(g: Graph, radius: int, program: str):
    start = time.perf_counter()
    balls, rounds = gather_balls(g, radius, program=program)
    return balls, rounds, time.perf_counter() - start


def _measured_volume(g: Graph, radius: int, program: str) -> FactVolumeSink:
    sink = FactVolumeSink()
    gather_balls(g, radius, program=program, sinks=[sink])
    return sink


def _cell(rows: List[dict], family: str, n: int, radius: int) -> None:
    g = FAMILIES[family](n)
    m = graph_index(g).m
    delta_balls, delta_rounds, t_delta = _timed_gather(g, radius, "delta")
    flood_balls, flood_rounds, t_flood = _timed_gather(g, radius, "reference")
    identical = delta_rounds == flood_rounds and delta_balls == flood_balls
    assert identical, f"delta diverged from flood on {family} n={n} r={radius}"
    del delta_balls, flood_balls

    delta_vol = _measured_volume(g, radius, "delta")
    flood_vol = _measured_volume(g, radius, "reference")
    volume_reduction = (
        round(flood_vol.facts / delta_vol.facts, 2) if delta_vol.facts else None
    )
    time_speedup = round(t_flood / t_delta, 2) if t_delta > 0 else None
    rows.append(
        {
            "family": family,
            "n": n,
            "m": m,
            "radius": radius,
            "rounds": delta_rounds,
            "delta_seconds": round(t_delta, 4),
            "flood_seconds": round(t_flood, 4),
            "time_speedup": time_speedup,
            "delta_facts": delta_vol.facts,
            "flood_facts": flood_vol.facts,
            "delta_messages": delta_vol.messages,
            "flood_messages": flood_vol.messages,
            "volume_reduction": volume_reduction,
            "identical": identical,
        }
    )
    print(
        f"  {family} n={n} r={radius}: delta {t_delta:.3f}s flood {t_flood:.3f}s"
        f" ({time_speedup}x), facts {delta_vol.facts} vs {flood_vol.facts}"
        f" ({volume_reduction}x reduction, identical={identical})"
    )


def run(quick: bool) -> dict:
    rows: List[dict] = []
    for family, n, radius in QUICK_CELLS if quick else FULL_CELLS:
        print(f"== {family} n={n} r={radius}")
        _cell(rows, family, n, radius)

    def _acceptance_reduction() -> Optional[float]:
        fam, n, r = ACCEPTANCE_CELL
        for row in rows:
            if (row["family"], row["n"], row["radius"]) == (fam, n, r):
                reduction = row["volume_reduction"]
                return float(reduction) if reduction is not None else None
        return None

    return {
        "benchmark": "repro.localmodel.gather",
        "quick": quick,
        "rows": rows,
        "all_outputs_identical": all(r["identical"] for r in rows),
        "min_volume_reduction": min(r["volume_reduction"] for r in rows),
        "max_volume_reduction": max(r["volume_reduction"] for r in rows),
        "acceptance": {
            "cell": {
                "family": ACCEPTANCE_CELL[0],
                "n": ACCEPTANCE_CELL[1],
                "radius": ACCEPTANCE_CELL[2],
            },
            "volume_reduction_at_n5000_r24": _acceptance_reduction(),
            "required_reduction": 10.0,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless outputs matched and the volume reductions held",
    )
    parser.add_argument("--out", type=Path, default=None, help="JSON output path")
    args = parser.parse_args(argv)

    payload = run(quick=args.quick)
    print(
        f"volume reduction {payload['min_volume_reduction']}x .."
        f" {payload['max_volume_reduction']}x across {len(payload['rows'])} cells"
    )

    if args.check:
        if not payload["all_outputs_identical"]:
            print("FAIL: delta output diverged from the full flood")
            return 1
        if args.quick:
            if payload["min_volume_reduction"] <= 1.0:
                print("FAIL: delta did not reduce message volume")
                return 1
            print("check passed: outputs identical, delta reduced volume everywhere")
        else:
            reduction = payload["acceptance"]["volume_reduction_at_n5000_r24"]
            if reduction is None or reduction < 10.0:
                print(f"FAIL: acceptance cell reduction {reduction} < 10x")
                return 1
            print(f"check passed: outputs identical, {reduction}x at the acceptance cell")

    out = args.out
    if out is None and not args.quick:
        out = OUT_PATH
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
