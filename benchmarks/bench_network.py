"""Gather benchmark: delta vs full flood, per-node vs batch executor.

Produces ``BENCH_network.json``: for every (family, n, radius) cell the
output-sensitive :class:`~repro.localmodel.gather.DeltaGatherProgram` is
run under both executors (per-node scheduler and the whole-round
:class:`~repro.localmodel.gather.DeltaGatherKernel`) together with the
retained full-flood reference; all per-node
:class:`~repro.localmodel.gather.KnownBall` outputs are asserted
identical and three figures are recorded per cell --

* **wall-clock** per executor (best of a few uninstrumented runs):
  ``node_seconds``, ``batch_seconds``, ``flood_seconds``;
* **time_speedup** = flood / batch: the headline the batch executor
  exists for.  PR 8's delta rewrite cut message *volume* 6-25x yet lost
  wall-clock (0.70-0.78x) to per-node Python dispatch; compiling the
  round to one kernel call flips the ratio;
* **fact volume**: a run under a counting sink totalling the facts
  (state entries + edge tuples) crossing the wire, charged per the
  :data:`~repro.localmodel.network.WIRE_STATUSES` contract.  Sinks
  observe per-message records, so these runs always take the per-node
  path -- volume is executor-invariant by the equivalence contract.

The ``path`` n=100000 cell is batch-scale evidence (the ROADMAP's
n >= 10^5 target): the flood is omitted there (its volume is quadratic
in ball size per round and would take minutes), so the row carries
``node_speedup`` (per-node delta / batch) instead of ``time_speedup``.

Unlike the rest of ``benchmarks/`` this is a standalone script, not a
pytest-benchmark module, because its artifact is the committed JSON:

    PYTHONPATH=src python benchmarks/bench_network.py                  # full sweep
    PYTHONPATH=src python benchmarks/bench_network.py --quick --check  # CI smoke

``--quick`` shrinks the sweep to two small cells; ``--executor`` limits
which delta executors are timed (``--executor batch`` is the CI smoke
proving kernel eligibility end to end -- ``gather_balls`` raises there
if batch mode would have to fall back).  ``--check`` exits nonzero
unless every output pair matched and the acceptance gates held: on the
full sweep, volume reduction >= 10x, ``time_speedup`` >= 3.0 *and*
never < 1.0 (a volume win may not ship a seconds loss again), and the
n=100000 cell in single-digit seconds; on the quick sweep, identity and
volume reduction > 1x.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.adjacency import Graph, Vertex
from repro.graphs.generators import (
    path_graph,
    random_chordal_graph,
    unit_interval_chain,
)
from repro.graphs.index import graph_index
from repro.localmodel.gather import gather_balls
from repro.localmodel.network import WIRE_STATUSES, MessageRecord, TraceSink

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_network.json"

#: (family, n, radius, time_flood, measure_volume) cells of the full
#: sweep; radii mirror the pipeline (collect_radius = 10 for MVC at
#: k=1, 15 for MIS at d=1) plus the deep-radius acceptance cell, the
#: saturation/burst chordal cells, and the n=10^5 batch-scale cell
#: (flood and volume instrumentation skipped: both are per-node-path
#: and quadratic-ish in ball volume at that size).
FULL_CELLS: Tuple[Tuple[str, int, int, bool, bool], ...] = (
    ("path", 2000, 10, True, True),
    ("path", 5000, 24, True, True),
    ("interval", 2000, 10, True, True),
    ("interval", 2000, 15, True, True),
    ("chordal", 500, 12, True, True),
    ("chordal", 1000, 8, True, True),
    ("path", 20000, 10, True, True),
    ("path", 100000, 10, False, False),
)

QUICK_CELLS: Tuple[Tuple[str, int, int, bool, bool], ...] = (
    ("path", 400, 12, True, True),
    ("interval", 300, 6, True, True),
)

#: the acceptance criteria are pinned to this cell ...
ACCEPTANCE_CELL = ("path", 5000, 24)
#: ... and the batch-scale criterion to this one
LARGE_CELL = ("path", 100000, 10)

#: wall-clock gates at the acceptance cell (and the floor everywhere a
#: speedup is measured: batch must never lose seconds again)
REQUIRED_TIME_SPEEDUP = 3.0
REQUIRED_TIME_FLOOR = 1.0
#: wall-clock gate at the large cell: single-digit seconds
REQUIRED_LARGE_SECONDS = 10.0

FAMILIES: Dict[str, Callable[[int], Graph]] = {
    "path": path_graph,
    "interval": lambda n: unit_interval_chain(n, seed=0),
    "chordal": lambda n: random_chordal_graph(n, seed=7),
}

#: best-of repeats for timed runs (1 at large n: one run is minutes of
#: signal there and variance is already amortized)
def _repeats(n: int) -> int:
    return 3 if n <= 5000 else 1


class FactVolumeSink(TraceSink):
    """Counts facts on the wire: state entries + edges, per charged record.

    Charging follows the wire contract (``WIRE_STATUSES``): dropped and
    delayed payloads crossed the wire, a matured ``"late"`` record is the
    delivery of an already-charged transmission.  On the reliable runs
    here every record is simply ``"delivered"``.
    """

    def __init__(self) -> None:
        self.facts = 0
        self.messages = 0

    def on_round(
        self,
        round_no: int,
        messages: List[MessageRecord],
        completed: List[Vertex],
        active_count: int,
    ) -> None:
        for record in messages:
            if record.status not in WIRE_STATUSES:
                continue
            d_states, d_edges = record.payload
            self.facts += len(d_states) + len(d_edges)
            self.messages += 1


def _timed_gather(g: Graph, radius: int, program: str, executor: str, repeats: int):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        balls, rounds = gather_balls(g, radius, program=program, executor=executor)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return balls, rounds, best


def _measured_volume(g: Graph, radius: int, program: str) -> FactVolumeSink:
    sink = FactVolumeSink()
    gather_balls(g, radius, program=program, sinks=[sink])
    return sink


def _cell(
    rows: List[dict],
    family: str,
    n: int,
    radius: int,
    executors: Tuple[str, ...],
    time_flood: bool,
    measure_volume: bool,
) -> None:
    g = FAMILIES[family](n)
    m = graph_index(g).m
    repeats = _repeats(n)

    outputs = {}
    seconds: Dict[str, Optional[float]] = {"node": None, "batch": None}
    rounds = None
    for executor in executors:
        balls, rounds, t = _timed_gather(g, radius, "delta", executor, repeats)
        outputs[executor] = balls
        seconds[executor] = t
    flood_seconds = None
    if time_flood:
        balls, flood_rounds, flood_seconds = _timed_gather(
            g, radius, "reference", "node", repeats
        )
        outputs["flood"] = balls
        assert flood_rounds == rounds, f"round count diverged on {family} n={n}"

    runs = list(outputs)
    identical = all(outputs[runs[0]] == outputs[k] for k in runs[1:])
    assert identical, f"outputs diverged ({runs}) on {family} n={n} r={radius}"
    outputs.clear()

    node_s, batch_s = seconds["node"], seconds["batch"]
    time_speedup = (
        round(flood_seconds / batch_s, 2)
        if flood_seconds is not None and batch_s
        else None
    )
    node_speedup = round(node_s / batch_s, 2) if node_s and batch_s else None

    delta_facts = flood_facts = delta_messages = flood_messages = None
    volume_reduction = None
    if measure_volume:
        delta_vol = _measured_volume(g, radius, "delta")
        flood_vol = _measured_volume(g, radius, "reference")
        delta_facts, delta_messages = delta_vol.facts, delta_vol.messages
        flood_facts, flood_messages = flood_vol.facts, flood_vol.messages
        if delta_facts:
            volume_reduction = round(flood_facts / delta_facts, 2)

    rows.append(
        {
            "family": family,
            "n": n,
            "m": m,
            "radius": radius,
            "rounds": rounds,
            "node_seconds": round(node_s, 4) if node_s is not None else None,
            "batch_seconds": round(batch_s, 4) if batch_s is not None else None,
            "flood_seconds": (
                round(flood_seconds, 4) if flood_seconds is not None else None
            ),
            "time_speedup": time_speedup,
            "node_speedup": node_speedup,
            "delta_facts": delta_facts,
            "flood_facts": flood_facts,
            "delta_messages": delta_messages,
            "flood_messages": flood_messages,
            "volume_reduction": volume_reduction,
            "identical": identical,
        }
    )
    print(
        f"  {family} n={n} r={radius}: node {_fmt(node_s)} batch {_fmt(batch_s)}"
        f" flood {_fmt(flood_seconds)} (speedup {time_speedup}x),"
        f" volume reduction {volume_reduction}x, identical={identical}"
    )


def _fmt(seconds: Optional[float]) -> str:
    return f"{seconds:.3f}s" if seconds is not None else "-"


def run(quick: bool, executors: Tuple[str, ...]) -> dict:
    rows: List[dict] = []
    for family, n, radius, time_flood, measure_volume in (
        QUICK_CELLS if quick else FULL_CELLS
    ):
        print(f"== {family} n={n} r={radius}")
        _cell(rows, family, n, radius, executors, time_flood, measure_volume)

    def _at(cell: Tuple[str, int, int]) -> Optional[dict]:
        for row in rows:
            if (row["family"], row["n"], row["radius"]) == cell:
                return row
        return None

    acceptance_row = _at(ACCEPTANCE_CELL)
    large_row = _at(LARGE_CELL)
    reductions = [
        r["volume_reduction"] for r in rows if r["volume_reduction"] is not None
    ]
    return {
        "benchmark": "repro.localmodel.gather",
        "quick": quick,
        "executors": list(executors),
        "rows": rows,
        "all_outputs_identical": all(r["identical"] for r in rows),
        "min_volume_reduction": min(reductions) if reductions else None,
        "max_volume_reduction": max(reductions) if reductions else None,
        "acceptance": {
            "cell": {
                "family": ACCEPTANCE_CELL[0],
                "n": ACCEPTANCE_CELL[1],
                "radius": ACCEPTANCE_CELL[2],
            },
            "volume_reduction_at_n5000_r24": (
                acceptance_row["volume_reduction"] if acceptance_row else None
            ),
            "required_reduction": 10.0,
            "time_speedup_at_n5000_r24": (
                acceptance_row["time_speedup"] if acceptance_row else None
            ),
            "required_time_speedup": REQUIRED_TIME_SPEEDUP,
            "required_time_floor": REQUIRED_TIME_FLOOR,
            "large_cell": {
                "family": LARGE_CELL[0],
                "n": LARGE_CELL[1],
                "radius": LARGE_CELL[2],
            },
            "batch_seconds_at_n100000": (
                large_row["batch_seconds"] if large_row else None
            ),
            "required_large_seconds": REQUIRED_LARGE_SECONDS,
        },
    }


def _check(payload: dict, quick: bool) -> int:
    if not payload["all_outputs_identical"]:
        print("FAIL: executor/program outputs diverged")
        return 1
    timed_batch = "batch" in payload["executors"]
    if quick:
        reduction = payload["min_volume_reduction"]
        if reduction is None or reduction <= 1.0:
            print("FAIL: delta did not reduce message volume")
            return 1
        print("check passed: outputs identical, delta reduced volume everywhere")
        return 0
    acceptance = payload["acceptance"]
    reduction = acceptance["volume_reduction_at_n5000_r24"]
    if reduction is None or reduction < acceptance["required_reduction"]:
        print(f"FAIL: acceptance cell reduction {reduction} < 10x")
        return 1
    if timed_batch:
        speedup = acceptance["time_speedup_at_n5000_r24"]
        if speedup is None or speedup < REQUIRED_TIME_SPEEDUP:
            print(
                f"FAIL: acceptance cell time_speedup {speedup}"
                f" < {REQUIRED_TIME_SPEEDUP}"
            )
            return 1
        floors = [
            r["time_speedup"]
            for r in payload["rows"]
            if r["time_speedup"] is not None
        ]
        if any(s < REQUIRED_TIME_FLOOR for s in floors):
            print(f"FAIL: a batch cell lost wall-clock to the flood: {floors}")
            return 1
        large = acceptance["batch_seconds_at_n100000"]
        if large is None or large >= REQUIRED_LARGE_SECONDS:
            print(f"FAIL: n=100000 batch gather took {large}s (>= 10s)")
            return 1
    print(f"check passed: outputs identical, {reduction}x at the acceptance cell")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless outputs matched and the acceptance gates held",
    )
    parser.add_argument(
        "--executor",
        choices=("node", "batch", "all"),
        default="all",
        help="which delta executors to time (batch forces the kernel path"
        " and fails loudly if it would have to fall back)",
    )
    parser.add_argument("--out", type=Path, default=None, help="JSON output path")
    args = parser.parse_args(argv)

    executors = ("node", "batch") if args.executor == "all" else (args.executor,)
    payload = run(quick=args.quick, executors=executors)
    if payload["min_volume_reduction"] is not None:
        print(
            f"volume reduction {payload['min_volume_reduction']}x .."
            f" {payload['max_volume_reduction']}x across {len(payload['rows'])} cells"
        )

    if args.check:
        status = _check(payload, args.quick)
        if status:
            return status

    out = args.out
    if out is None and not args.quick:
        out = OUT_PATH
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
