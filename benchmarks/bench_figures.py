"""Experiments F1-F6: the paper's worked example (Figures 1-6)."""

from benchmarks.conftest import run_once
from repro.cliquetree import (
    build_clique_forest,
    compute_local_view,
    maximal_binary_paths,
    nodes_with_subtree_in,
)
from repro.graphs import (
    FIGURE3_CENTER,
    FIGURE5_PATH,
    PAPER_CLIQUES,
    paper_example_cliques,
    paper_example_graph,
)


def test_figure1_graph_construction(benchmark):
    """F1: the 23-node chordal graph of Figure 1."""
    g = run_once(benchmark, paper_example_graph)
    assert len(g) == 23
    assert g.num_edges() == 35
    benchmark.extra_info["n"] = len(g)
    benchmark.extra_info["m"] = g.num_edges()


def test_figure2_clique_forest(benchmark):
    """F2: W_G and the canonical clique forest."""
    g = paper_example_graph()
    forest = run_once(benchmark, build_clique_forest, g)
    assert set(forest.cliques()) == set(paper_example_cliques())
    assert len(forest.edges()) == 14
    assert forest.is_valid_decomposition(g)
    benchmark.extra_info["cliques"] = forest.num_cliques()


def test_figure34_local_view(benchmark):
    """F3/F4: node 10's radius-3 local view equals the induced fragment."""
    g = paper_example_graph()
    forest = build_clique_forest(g)
    view = run_once(benchmark, compute_local_view, g, FIGURE3_CENTER, 3)
    names = {"C1", "C2", "C3", "C5", "C6", "C7", "C8", "C9"}
    assert set(view.forest.cliques()) == {PAPER_CLIQUES[n] for n in names}
    global_edges = {frozenset(e) for e in forest.edges()}
    assert {frozenset(e) for e in view.forest.edges()} <= global_edges
    benchmark.extra_info["visible_cliques"] = len(view.forest.cliques())


def test_figure56_path_removal(benchmark):
    """F5/F6: peeling C6..C10 leaves the clique forest of the reduced graph."""
    g = paper_example_graph()
    forest = build_clique_forest(g)
    path = [PAPER_CLIQUES[name] for name in FIGURE5_PATH]

    def peel():
        u = nodes_with_subtree_in(forest, path)
        return u, forest.without_cliques(path)

    u, reduced_forest = run_once(benchmark, peel)
    assert u == {9, 10, 11, 12, 13, 14}
    assert reduced_forest == build_clique_forest(g.subgraph_without(u))
    benchmark.extra_info["removed_nodes"] = len(u)
