"""Experiment X1 (Section 9's open question): l-chordal graphs by detour.

Not a paper claim -- the paper *asks* how to handle longer induced cycles.
This benchmark quantifies the obvious first attack (triangulate, then run
Algorithm 1): the fill-in and color detour grow with the induced cycle
length, which is exactly why the question is open.
"""

import pytest

from benchmarks.conftest import run_once
from repro.extensions import handle_experiment_rows, triangulate_and_color
from repro.extensions.k_chordal import chordal_with_handles


def test_handle_sweep(benchmark):
    rows = run_once(
        benchmark,
        handle_experiment_rows,
        (3, 5, 7),
        16,  # n
        2,   # handles
        (0, 1),
    )
    assert len(rows) == 3
    for length, cycle, fill, worst in rows:
        # the coloring never beats the true chi, and the detour is finite
        assert worst is None or 1.0 <= worst <= 4.0
    # longer handles => at least as much fill-in is plausible but noisy;
    # assert only that fill never vanishes once handles exist
    assert all(fill >= 1 for _, _, fill, _ in rows)
    benchmark.extra_info["rows"] = rows


def test_detour_on_single_instance(benchmark):
    g = chordal_with_handles(14, handles=2, handle_length=5, seed=7)
    outcome = run_once(benchmark, triangulate_and_color, g)
    assert outcome.colors >= outcome.chi_true
    benchmark.extra_info.update(
        {
            "colors": outcome.colors,
            "chi_true": outcome.chi_true,
            "chi_completion": outcome.chi_completion,
            "fill": outcome.fill_edges,
        }
    )
