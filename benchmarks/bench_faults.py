"""Timing + acceptance benchmark for the fault-injection layer.

Produces ``BENCH_faults.json``: the injection overhead of an *empty*
:class:`~repro.localmodel.faults.FaultPlan` on the quiet-convergecast
scheduler path (the workload the active-set scheduler optimizes, so any
per-delivery cost shows immediately), wall-clocks for the resilience
sweep, and the acceptance facts CI asserts with ``--check``:

* an empty plan is behavior-preserving: identical outputs and
  :class:`~repro.localmodel.network.RunStats` versus ``faults=None``;
* empty-plan injection overhead stays under 10% (median over repeats)
  on the quiet-convergecast workload;
* the resilience classification of every stock program matches the
  pinned table, with and without the retry/ack envelope.

Like ``bench_lint.py`` this is a standalone script, not a
pytest-benchmark module, because its artifact is the committed JSON:

    PYTHONPATH=src python benchmarks/bench_faults.py                  # full run
    PYTHONPATH=src python benchmarks/bench_faults.py --quick --check  # CI smoke

``--quick`` shrinks the convergecast path and the repeat count.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OUT_PATH = REPO_ROOT / "BENCH_faults.json"

#: empty-plan injection overhead budget on the quiet-convergecast path
OVERHEAD_LIMIT = 0.10
#: absolute slack for timer noise on very fast runs (seconds)
OVERHEAD_ABS_SLACK = 0.003

#: the pinned classification table under the default fault grid; a
#: change here is a deliberate resilience change, not drift
EXPECTED_CLASSES = {
    False: {  # bare programs
        "bfs": "degraded-but-valid",
        "leader": "degraded-but-valid",
        "echo": "degraded-but-valid",
        "gather": "degraded-but-valid",
        "gather-delta": "degraded-but-valid",
        "luby": "unsafe",
        "coloring": "unsafe",
        "linial": "unsafe",
    },
    True: {  # wrapped in the ReliableProgram retry/ack envelope
        "bfs": "degraded-but-valid",
        "leader": "self-healing",
        "echo": "self-healing",
        "gather": "degraded-but-valid",
        "gather-delta": "degraded-but-valid",
        "luby": "unsafe",
        "coloring": "unsafe",
        "linial": "unsafe",
    },
}


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def bench_overhead(rows: List[dict], quick: bool) -> Dict[str, Any]:
    """Empty-plan delivery-hook cost on the quiet convergecast."""
    from repro.graphs import path_graph
    from repro.localmodel import EchoCountProgram, FaultPlan, SyncNetwork

    n = 800 if quick else 4000
    repeats = 3 if quick else 7
    graph = path_graph(n)
    factory = lambda v, nbrs: EchoCountProgram(v, nbrs, 0)

    def bare():
        net = SyncNetwork(graph, factory)
        return net.run(max_rounds=2 * n), net.stats

    def injected():
        net = SyncNetwork(graph, factory, faults=FaultPlan())
        return net.run(max_rounds=2 * n), net.stats

    (bare_out, bare_stats), _ = _timed(bare)  # warm up + reference
    (inj_out, inj_stats), _ = _timed(injected)
    bare_times = []
    injected_times = []
    for _ in range(repeats):
        _, t = _timed(bare)
        bare_times.append(t)
        _, t = _timed(injected)
        injected_times.append(t)
    t_bare = statistics.median(bare_times)
    t_injected = statistics.median(injected_times)
    rows.append({"stage": "convergecast:bare", "seconds": round(t_bare, 6)})
    rows.append({"stage": "convergecast:empty-plan", "seconds": round(t_injected, 6)})
    return {
        "workload": f"echo convergecast on P_{n} (active scheduler)",
        "n": n,
        "repeats": repeats,
        "rounds": bare_stats.rounds,
        "bare_seconds": round(t_bare, 6),
        "injected_seconds": round(t_injected, 6),
        "overhead_ratio": round(t_injected / t_bare - 1.0, 4) if t_bare else None,
        "overhead_abs_seconds": round(t_injected - t_bare, 6),
        "outputs_identical": bare_out == inj_out,
        "stats_identical": bare_stats == inj_stats,
    }


def bench_sweep(rows: List[dict]) -> Dict[str, Any]:
    """The resilience classification of every stock program, both modes."""
    from repro.cli import _faults_suite
    from repro.localmodel import resilience_check, with_retries

    classifications: Dict[str, Dict[str, str]] = {"bare": {}, "retries": {}}
    drift = []
    total = 0.0
    for retry in (False, True):
        mode = "retries" if retry else "bare"
        for name, graph, factory, validator in _faults_suite():
            if retry:
                factory = with_retries(factory)
            report, t = _timed(resilience_check, graph, factory, validator)
            rows.append(
                {"stage": f"sweep:{mode}:{name}", "seconds": round(t, 6)}
            )
            total += t
            classifications[mode][name] = report.classification
            if report.classification != EXPECTED_CLASSES[retry][name]:
                drift.append(
                    f"{name} ({mode}): {report.classification}, pinned "
                    f"{EXPECTED_CLASSES[retry][name]}"
                )
    return {
        "classifications": classifications,
        "classification_table_matches": not drift,
        "drift": drift,
        "total_seconds": round(total, 6),
    }


def run(quick: bool) -> dict:
    rows: List[dict] = []
    overhead = bench_overhead(rows, quick)
    sweep = bench_sweep(rows)
    for row in rows:
        print(f"  {row['stage']:<28} {row['seconds']:.4f}s")
    return {
        "benchmark": "repro.localmodel.faults",
        "quick": quick,
        "rows": rows,
        "overhead": overhead,
        "sweep": sweep,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless every acceptance fact above holds",
    )
    parser.add_argument("--out", type=Path, default=None, help="JSON output path")
    args = parser.parse_args(argv)

    payload = run(quick=args.quick)

    if args.check:
        problems = []
        overhead = payload["overhead"]
        if not overhead["outputs_identical"]:
            problems.append("empty plan changed the convergecast outputs")
        if not overhead["stats_identical"]:
            problems.append("empty plan changed the RunStats")
        ratio = overhead["overhead_ratio"]
        if (
            ratio is not None
            and ratio > OVERHEAD_LIMIT
            and overhead["overhead_abs_seconds"] > OVERHEAD_ABS_SLACK
        ):
            problems.append(
                f"empty-plan overhead {ratio:.1%} exceeds {OVERHEAD_LIMIT:.0%}"
            )
        sweep = payload["sweep"]
        if not sweep["classification_table_matches"]:
            problems.append(
                "classification drifted from the pinned table: "
                + "; ".join(sweep["drift"])
            )
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        print(
            "check passed: empty plan behavior-preserving, overhead "
            "bounded, classifications pinned"
        )

    out = args.out
    if out is None and not args.quick:
        out = OUT_PATH
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
