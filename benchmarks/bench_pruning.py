"""Experiment L6 (Lemma 6): the peeling terminates in <= ceil(log2 n) layers."""

import math

import pytest

from benchmarks.conftest import run_once
from repro.analysis import GRAPH_FAMILIES
from repro.coloring import diameter_rule, peel_chordal_graph


@pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
@pytest.mark.parametrize("n", [200, 800])
def test_layer_count_log_bound(benchmark, family, n):
    g = GRAPH_FAMILIES[family](n, 0)
    peeling = run_once(
        benchmark, peel_chordal_graph, g, diameter_rule(4)
    )
    assert peeling.exhausted
    bound = math.ceil(math.log2(max(2, len(g)))) + 1
    assert peeling.num_layers() <= bound
    benchmark.extra_info.update(
        {"family": family, "n": n, "layers": peeling.num_layers(), "bound": bound}
    )


def test_balanced_binary_tree_needs_many_layers(benchmark):
    """The log n bound is near-tight on complete binary trees."""
    from repro.graphs import binary_tree

    g = binary_tree(depth=9)  # 1023 nodes
    peeling = run_once(benchmark, peel_chordal_graph, g, diameter_rule(10**9))
    assert peeling.num_layers() >= 4
    assert peeling.num_layers() <= math.ceil(math.log2(len(g))) + 1
    benchmark.extra_info["layers"] = peeling.num_layers()
