"""Legacy entry point so `pip install -e .` works without the `wheel` package.

All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
